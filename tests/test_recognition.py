"""Tests for tractability recognition (Theorem 3)."""

import pytest

from repro import catalog, language
from repro.algorithms.reductions import (
    emptiness_to_trc_instance,
    universality_to_trc_instance,
)
from repro.languages.dfa import from_nfa
from repro.languages.nfa import nfa_from_ast
from repro.languages.regex.parser import parse
from repro.recognition import (
    recognize_tractable_dfa,
    recognize_tractable_nfa,
    recognize_tractable_regex,
)


class TestDfaRecognition:
    @pytest.mark.parametrize("entry", catalog.entries(), ids=lambda e: e.name)
    def test_catalog(self, entry):
        dfa = entry.language().dfa
        report = recognize_tractable_dfa(dfa)
        assert report.tractable is (entry.complexity != "NP-complete")

    def test_non_minimal_input_handled(self):
        # Feed the recognizer an unminimised subset-construction DFA.
        raw = from_nfa(nfa_from_ast(parse("a*ba* + a*ba*")))
        report = recognize_tractable_dfa(raw)
        assert not report.tractable
        assert report.minimal_states <= report.input_states

    def test_report_contents(self):
        report = recognize_tractable_dfa(language("a*c*").dfa)
        assert report.tractable
        assert report.violating_pair is None
        assert report.pairs_checked >= 1

    def test_violating_pair_reported(self):
        report = recognize_tractable_dfa(language("(aa)*").dfa)
        assert not report.tractable
        assert report.violating_pair is not None

    def test_type_checked(self):
        with pytest.raises(TypeError):
            recognize_tractable_dfa("a*")


class TestNfaRecognition:
    def test_regex_entry_point(self):
        assert recognize_tractable_regex("a*(bb+ + eps)c*").tractable
        assert not recognize_tractable_regex("a*ba*").tractable

    def test_blowup_recorded(self):
        report = recognize_tractable_regex("(0+1)*1(0+1)(0+1)(0+1)")
        # The k-th-letter-from-the-end family forces ≥ 2^k determinized
        # states — the PSPACE lower bound's fingerprint.
        assert report.determinized_states >= 2 ** 3

    def test_type_checked(self):
        with pytest.raises(TypeError):
            recognize_tractable_nfa("not an nfa")


class TestHardnessFamilies:
    """Recognition must answer correctly on both reduction families."""

    @pytest.mark.parametrize("regex,empty", [("ab", False), ("a*b", False)])
    def test_emptiness_family_nonempty(self, regex, empty):
        instance = emptiness_to_trc_instance(language(regex).dfa)
        assert recognize_tractable_dfa(instance).tractable is empty

    def test_emptiness_family_empty(self):
        instance = emptiness_to_trc_instance(
            language("∅", alphabet={"a"}).dfa
        )
        assert recognize_tractable_dfa(instance).tractable

    @pytest.mark.parametrize(
        "regex,universal",
        [("(0+1)*", True), ("(00+1)*", False), ("0*", False)],
    )
    def test_universality_family(self, regex, universal):
        instance = universality_to_trc_instance(nfa_from_ast(parse(regex)))
        assert recognize_tractable_nfa(instance).tractable is universal
