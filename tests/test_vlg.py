"""Tests for vertex-labeled / vertex-edge-labeled RSPQs (Section 4.1)."""

import pytest

from repro import catalog, language
from repro.core.vlg import (
    find_trc_vlg_counterexample,
    is_in_trc_evlg,
    is_in_trc_vlg,
    solve_evlg,
    solve_vlg,
)
from repro.errors import GraphError
from repro.graphs.vlgraph import EvlGraph, VlGraph, default_pair_encoding


class TestTrcVlgMembership:
    """The four data points the paper states explicitly."""

    @pytest.mark.parametrize(
        "regex,expected",
        [("(ab)*", True), ("a*bc*", True), ("a*ba*", False),
         ("(aa)*", False)],
    )
    def test_paper_examples(self, regex, expected):
        assert is_in_trc_vlg(language(regex).dfa) is expected

    @pytest.mark.parametrize(
        "entry", catalog.tractable_entries(), ids=lambda e: e.name
    )
    def test_trc_implies_trc_vlg(self, entry):
        # trC ⊆ trC_vlg: the vl condition quantifies over fewer pairs.
        assert is_in_trc_vlg(entry.language().dfa)

    def test_definitional_oracle_agrees_on_hard_cases(self):
        lang = language("(aa)*")
        counter = find_trc_vlg_counterexample(lang.dfa, 2, max_length=8)
        assert counter is not None
        wl, w1, wm, w2, wr = counter
        assert w1[-1] == w2[-1]  # the ≡vl constraint

    def test_definitional_oracle_silent_on_vlg_tractable(self):
        lang = language("a*bc*")
        assert find_trc_vlg_counterexample(lang.dfa, 3, max_length=8) is None


class TestTrcEvlg:
    def test_edge_labels_ignored_when_grouping_by_vertex(self):
        # Pair symbols: '0' = (v=a, e=x), '1' = (v=a, e=y).  A language
        # distinguishing edge labels only is judged by vertex groups.
        vertex_label = {"0": "a", "1": "a"}.get
        # (01)* over same-vertex-label pairs behaves like (aa)* — hard.
        assert not is_in_trc_evlg(language("(01)*").dfa, vertex_label)

    def test_distinct_vertex_labels_relax(self):
        vertex_label = {"0": "a", "1": "b"}.get
        # (01)* with alternating vertex labels mirrors (ab)* on
        # vl-graphs — tractable.
        assert is_in_trc_evlg(language("(01)*").dfa, vertex_label)


class TestVlGraphStructure:
    def test_relabel_conflict(self):
        graph = VlGraph()
        graph.add_vertex(1, "a")
        with pytest.raises(GraphError):
            graph.add_vertex(1, "b")

    def test_edge_needs_labeled_endpoints(self):
        graph = VlGraph()
        graph.add_vertex(1, "a")
        with pytest.raises(GraphError):
            graph.add_edge(1, 2)

    def test_encoding_uses_target_labels(self):
        graph = VlGraph()
        graph.add_vertex(1, "a")
        graph.add_vertex(2, "b")
        graph.add_edge(1, 2)
        encoded = graph.to_dbgraph()
        assert encoded.has_edge(1, "b", 2)


class TestSolveVlg:
    def _alternating_path(self, labels):
        graph = VlGraph()
        for index, label in enumerate(labels):
            graph.add_vertex(index, label)
        for index in range(len(labels) - 1):
            graph.add_edge(index, index + 1)
        return graph

    def test_vertex_word_semantics(self):
        graph = self._alternating_path("abab")
        result = solve_vlg(language("a(ba)*"), graph, 0, 2)
        assert result.found
        assert result.path.vertices == (0, 1, 2)

    def test_mismatched_vertex_word(self):
        graph = self._alternating_path("abab")
        assert not solve_vlg(language("a(ba)*"), graph, 0, 3).found

    def test_single_vertex_query(self):
        graph = self._alternating_path("a")
        assert solve_vlg(language("a"), graph, 0, 0).found
        assert not solve_vlg(language("b"), graph, 0, 0).found

    def test_requires_vlgraph(self):
        from repro.graphs.dbgraph import DbGraph

        with pytest.raises(GraphError):
            solve_vlg(language("a"), DbGraph(), 0, 0)

    def test_vlg_easier_than_dbgraph_example(self):
        # a*bc* query on a vl-graph: vertices labeled a feed a b-vertex
        # then c-vertices; correctness on a yes and a no instance.
        graph = VlGraph()
        layout = {0: "a", 1: "a", 2: "b", 3: "c", 4: "c"}
        for vertex, label in layout.items():
            graph.add_vertex(vertex, label)
        for edge in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            graph.add_edge(*edge)
        assert solve_vlg(language("a*bc*"), graph, 0, 4).found
        # Single-vertex query: vertex word "b" IS in a*bc*, so 2 -> 2
        # holds; an a-labeled start alone does not.
        assert solve_vlg(language("a*bc*"), graph, 2, 2).found
        assert not solve_vlg(language("bc*"), graph, 0, 0).found


class TestSolveEvlg:
    def test_pair_encoding_roundtrip(self):
        graph = EvlGraph()
        graph.add_vertex(0, "a")
        graph.add_vertex(1, "b")
        graph.add_edge(0, "x", 1)
        encoded, encoding = graph.to_dbgraph()
        assert encoded.has_edge(0, encoding[("b", "x")], 1)

    def test_solve_with_encoding(self):
        graph = EvlGraph()
        for vertex, label in [(0, "a"), (1, "b"), (2, "a")]:
            graph.add_vertex(vertex, label)
        graph.add_edge(0, "x", 1)
        graph.add_edge(1, "y", 2)
        encoding = default_pair_encoding(graph.pair_alphabet())
        bx = encoding[("b", "x")]
        ay = encoding[("a", "y")]
        result, _enc = solve_evlg(
            language(bx + ay), graph, 0, 2, encoding=encoding
        )
        assert result.found

    def test_requires_evlgraph(self):
        from repro.graphs.dbgraph import DbGraph

        with pytest.raises(GraphError):
            solve_evlg(language("a"), DbGraph(), 0, 0)
