"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs.generators import random_labeled_graph


@pytest.fixture
def rng():
    return random.Random(20130622)  # PODS 2013 conference date


def random_instance(seed, alphabet, max_vertices=12):
    """A reproducible random (graph, x, y) triple."""
    rand = random.Random(seed)
    n = rand.randint(4, max_vertices)
    m = rand.randint(n, 3 * n)
    graph = random_labeled_graph(n, m, alphabet, seed=seed)
    return graph, rand.randrange(n), rand.randrange(n)


def paths_agree(path_a, path_b):
    """Both None, or both found with equal length."""
    if (path_a is None) != (path_b is None):
        return False
    return path_a is None or len(path_a) == len(path_b)
