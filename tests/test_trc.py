"""Tests for trC membership (Definition 1 / Lemma 6) and its oracle."""

import pytest

from repro import catalog
from repro.languages import Language, language
from repro.core.trc import (
    find_trc_counterexample,
    is_in_trc,
    is_in_trc_zero,
    loops_then_quotient_nfa,
    violating_pairs,
    violation_word,
)


class TestCatalogMembership:
    @pytest.mark.parametrize("entry", catalog.entries(), ids=lambda e: e.name)
    def test_matches_ground_truth(self, entry):
        assert is_in_trc(entry.language().dfa) is entry.in_trc

    def test_accepts_language_objects(self):
        assert is_in_trc(language("a*")) is True

    def test_rejects_other_inputs(self):
        with pytest.raises(TypeError):
            is_in_trc("a*")


class TestDefinitionOracle:
    """The automaton test must agree with brute-force Definition 1."""

    @pytest.mark.parametrize(
        "regex", ["(aa)*", "a*ba*", "a*bc*", "(ab)*"],
        ids=["even-a", "aba", "abc", "abstar"],
    )
    def test_hard_languages_have_counterexamples(self, regex):
        lang = language(regex)
        i = lang.num_states  # Lemma 2: trC iff trC(M)
        counter = find_trc_counterexample(lang.dfa, i, max_length=4 * i + 4)
        assert counter is not None
        wl, w1, wm, w2, wr = counter
        original = wl + w1 * i + wm + w2 * i + wr
        pumped = wl + w1 * i + w2 * i + wr
        assert lang.accepts(original)
        assert not lang.accepts(pumped)

    @pytest.mark.parametrize(
        "regex", ["a*", "a*c*", "a*(bb^+ + eps)c*"],
        ids=["astar", "ac", "example1"],
    )
    def test_tractable_languages_have_none_short(self, regex):
        lang = language(regex)
        i = lang.num_states
        assert find_trc_counterexample(lang.dfa, i, max_length=10) is None


class TestViolatingPairs:
    def test_hard_language_yields_pair_and_word(self):
        lang = language("a*ba*")
        pairs = list(violating_pairs(lang.dfa))
        assert pairs
        q1, q2 = pairs[0]
        word = violation_word(lang.dfa, q1, q2)
        assert word is not None
        # The word is in Loop(q2)^M · L_{q2} but not in L_{q1}.
        assert lang.dfa.run_from(q1, word) not in lang.dfa.accepting

    def test_tractable_language_yields_none(self):
        assert list(violating_pairs(language("a*c*").dfa)) == []


class TestLoopsThenQuotientNfa:
    def test_language_shape(self):
        dfa = language("a*b").dfa
        q0 = dfa.initial
        nfa = loops_then_quotient_nfa(dfa, q0, 2)
        # Words: >= 2 a-loops then a word of L_{q0} = a*b.
        assert nfa.accepts("aab")
        assert nfa.accepts("aaab")
        assert not nfa.accepts("ab")
        assert not nfa.accepts("b")
        assert not nfa.accepts("aa")


class TestClosureProperties:
    """Lemma 1: trC is closed by intersection, union, word reversal."""

    TRC = ["a*", "a*c*", "a*(bb^+ + eps)c*", "a*(b + eps)c*"]

    @pytest.mark.parametrize("left", TRC[:2], ids=["a", "ac"])
    @pytest.mark.parametrize("right", TRC[2:], ids=["ex1", "optb"])
    def test_union_closed(self, left, right):
        combined = language(left).dfa.union(language(right).dfa)
        assert is_in_trc(Language(combined).dfa)

    @pytest.mark.parametrize("left", TRC[:2], ids=["a", "ac"])
    @pytest.mark.parametrize("right", TRC[2:], ids=["ex1", "optb"])
    def test_intersection_closed(self, left, right):
        combined = language(left).dfa.intersection(language(right).dfa)
        assert is_in_trc(Language(combined).dfa)

    @pytest.mark.parametrize("regex", TRC, ids=["a", "ac", "ex1", "optb"])
    def test_reversal_closed(self, regex):
        reversed_lang = Language(language(regex).dfa.reverse_nfa())
        assert is_in_trc(reversed_lang.dfa)

    def test_union_of_hard_stays_hard_here(self):
        # Not a closure claim from the paper — a sanity check that our
        # union construction does not accidentally "fix" hard languages.
        combined = language("a*ba*").dfa.union(language("(aa)*").dfa)
        assert not is_in_trc(Language(combined).dfa)


class TestLemma2Monotonicity:
    """trC(i) ⊆ trC(i+1): a violation at i+1 implies one at i is *not*
    required, but a violation at i+1 for word pumping must persist when
    the oracle is run at smaller i on hard languages."""

    def test_counterexample_monotone_for_even_a(self):
        lang = language("(aa)*")
        # (aa)* violates trC(i) for every i >= 1.
        for i in (1, 2, 3):
            assert find_trc_counterexample(lang.dfa, i, max_length=10) is not None


class TestTrcZero:
    @pytest.mark.parametrize("entry", catalog.entries(), ids=lambda e: e.name)
    def test_matches_subword_closure(self, entry):
        assert is_in_trc_zero(entry.language().dfa) is entry.subword_closed

    def test_strict_inclusion_in_trc(self):
        # Example 1 is in trC but not subword-closed: the Mendelzon-Wood
        # fragment is strictly smaller (the paper's point in §1).
        lang = language("a*(bb^+ + eps)c*")
        assert is_in_trc(lang.dfa)
        assert not is_in_trc_zero(lang.dfa)
