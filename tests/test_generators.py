"""Tests for the workload generators."""

import pytest

from repro.algorithms.dag import is_dag
from repro.graphs.generators import (
    component_chain_graph,
    figure3_graph,
    figure4_graph,
    grid_graph,
    labeled_cycle,
    labeled_path,
    layered_dag,
    random_labeled_graph,
    random_vl_graph,
    transportation_network,
    two_terminal_random_digraph,
)


class TestDeterminism:
    def test_random_graph_reproducible(self):
        a = random_labeled_graph(10, 20, "ab", seed=5)
        b = random_labeled_graph(10, 20, "ab", seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = random_labeled_graph(10, 20, "ab", seed=5)
        b = random_labeled_graph(10, 20, "ab", seed=6)
        assert sorted(a.edges()) != sorted(b.edges())


class TestShapes:
    def test_labeled_path(self):
        graph = labeled_path("abc")
        assert graph.num_vertices == 4
        assert graph.num_edges == 3

    def test_labeled_cycle(self):
        graph = labeled_cycle("ab")
        assert graph.num_vertices == 2
        assert graph.has_edge(0, "a", 1)
        assert graph.has_edge(1, "b", 0)

    def test_grid_dimensions(self):
        graph = grid_graph(3, 4)
        assert graph.num_vertices == 12
        # right edges: 3 rows x 3, down edges: 2 x 4.
        assert graph.num_edges == 9 + 8

    def test_layered_dag_is_acyclic(self):
        graph = layered_dag(4, 3, "ab", density=0.9, seed=1)
        assert is_dag(graph)

    def test_random_graph_edge_count(self):
        graph = random_labeled_graph(8, 30, "ab", seed=0)
        assert graph.num_edges == 30

    def test_random_graph_edge_cap(self):
        graph = random_labeled_graph(2, 10**6, "a", seed=0)
        assert graph.num_edges <= 2 * 2 * 1


class TestPaperFamilies:
    def test_figure3_query_endpoints(self):
        graph, x, y = figure3_graph()
        assert graph.has_vertex(x)
        assert graph.has_vertex(y)
        assert graph.num_vertices == 15

    @pytest.mark.parametrize("k", [2, 4])
    def test_figure4_structure(self, k):
        graph, x, y = figure4_graph(k)
        assert graph.has_vertex(x)
        assert graph.has_vertex(y)
        # a-chain and c-chain have 2k edges each; the b-path 2k total
        # (k to the first middle, 1 bridge, k-1 to y_0).
        labels = {}
        for _s, label, _t in graph.edges():
            labels[label] = labels.get(label, 0) + 1
        assert labels["a"] == 2 * k
        assert labels["c"] == 2 * k
        assert labels["b"] == 2 * k

    @pytest.mark.parametrize("k", [2, 4])
    def test_figure4_cross_structure(self, k):
        from repro.graphs.generators import figure4_cross_graph

        graph, _x, _y = figure4_cross_graph(k)
        labels = {}
        for _s, label, _t in graph.edges():
            labels[label] = labels.get(label, 0) + 1
        assert labels["b"] == 3 * k

    def test_figure4_requires_k_at_least_two(self):
        with pytest.raises(ValueError):
            figure4_graph(1)

    def test_component_chain_has_main_path(self):
        graph, x, y = component_chain_graph(["aa", "bb"], seed=3)
        from repro.algorithms.exact import ExactSolver

        assert ExactSolver("aabb").exists(graph, x, y)


class TestDomainGenerators:
    def test_transportation_network_connected_ring(self):
        graph, cities = transportation_network(8, seed=2)
        reach = graph.reachable_within(cities[0])
        assert set(cities) <= reach

    def test_two_terminal_instance(self):
        edges, x1, y1, x2, y2 = two_terminal_random_digraph(10, 20, seed=4)
        assert len({x1, y1, x2, y2}) == 4
        assert all(a != b for a, b in edges)

    def test_random_vl_graph_labels(self):
        graph = random_vl_graph(10, 15, "ab", seed=1)
        assert graph.num_vertices == 10
        for vertex in graph.vertices():
            assert graph.label_of(vertex) in {"a", "b"}

    def test_scale_free_social_graph(self):
        from repro.graphs.generators import scale_free_social_graph

        graph = scale_free_social_graph(40, seed=7)
        assert graph.num_vertices == 40
        assert graph.labels() <= {"f", "k"}
        # Every edge exists in both directions (some label each way).
        for source, _label, target in graph.edges():
            assert graph.successors(target) & {source}

    def test_scale_free_requires_three_vertices(self):
        from repro.graphs.generators import scale_free_social_graph

        with pytest.raises(ValueError):
            scale_free_social_graph(2)
