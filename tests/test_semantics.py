"""Tests for walk / trail / simple path semantics (introduction, E13)."""

import pytest

from repro.algorithms.semantics import (
    SEMANTICS,
    SIMPLE,
    TRAIL,
    WALK,
    SemanticsEvaluator,
)
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import labeled_cycle, labeled_path
from repro.languages import language


class TestHierarchy:
    """simple ⇒ trail ⇒ walk on every instance."""

    def test_on_random_instances(self):
        from tests.conftest import random_instance

        for regex in ["(aa)*", "a*ba*", "(ab)*"]:
            evaluator = SemanticsEvaluator(language(regex))
            for seed in range(10):
                graph, x, y = random_instance(seed, "ab", max_vertices=7)
                answers = evaluator.evaluate_all(graph, x, y)
                if answers[SIMPLE]:
                    assert answers[TRAIL]
                if answers[TRAIL]:
                    assert answers[WALK]


class TestSeparations:
    def test_walk_but_no_trail(self):
        # a^4 on a 2-cycle: the walk 0->1->0->1->0 repeats both edges;
        # no trail of length 4 exists with only two edges available.
        graph = labeled_cycle("aa")
        evaluator = SemanticsEvaluator(language("a{4}"))
        assert evaluator.exists(graph, 0, 0, WALK)
        assert not evaluator.exists(graph, 0, 0, TRAIL)

    def test_trail_but_no_simple_path(self):
        # Figure-eight: two triangles sharing vertex 1; the word a^6
        # traverses both loops edge-distinctly but revisits vertex 1.
        graph = DbGraph.from_edges(
            [(0, "a", 1), (1, "a", 2), (2, "a", 0),
             (1, "a", 3), (3, "a", 4), (4, "a", 1)]
        )
        evaluator = SemanticsEvaluator(language("a{6}"))
        assert evaluator.exists(graph, 0, 0, WALK)
        assert evaluator.exists(graph, 0, 0, TRAIL)
        assert not evaluator.exists(graph, 0, 0, SIMPLE)

    def test_unknown_semantics_rejected(self):
        evaluator = SemanticsEvaluator(language("a"))
        with pytest.raises(ValueError):
            evaluator.exists(labeled_path("a"), 0, 1, "bogus")


class TestCounting:
    def test_count_walks_explosion(self):
        # Arenas et al.'s yottabyte point: walk counts blow up.
        graph = DbGraph.from_edges(
            [(0, "a", 1), (0, "a", 2), (1, "a", 3), (2, "a", 3),
             (3, "a", 4), (3, "a", 5), (4, "a", 6), (5, "a", 6)]
        )
        evaluator = SemanticsEvaluator(language("a*"))
        assert evaluator.count_walks(graph, 0, 6, 4) == 4

    def test_count_walks_vs_simple(self):
        graph = labeled_cycle("aa")
        evaluator = SemanticsEvaluator(language("(aa)*"))
        # Walks 0->0 of length <= 6: lengths 0, 2, 4, 6.
        assert evaluator.count_walks(graph, 0, 0, 6) == 4
        # Only the empty path is simple.
        assert evaluator.count_simple(graph, 0, 0) == 1

    def test_count_trails(self):
        graph = DbGraph.from_edges(
            [(0, "a", 1), (1, "a", 2), (0, "a", 2)]
        )
        evaluator = SemanticsEvaluator(language("a*"))
        # 0->2: direct edge, and the two-edge route.
        assert evaluator.count_trails(graph, 0, 2) == 2

    def test_semantics_constant_list(self):
        assert set(SEMANTICS) == {WALK, TRAIL, SIMPLE}
