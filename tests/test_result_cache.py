"""The engine result cache (ISSUE-5): repeated queries replay for free.

Covers the cache contract (hits return the identical answer, counters
move, LRU bounds hold), the disable knob, batch integration, and the
correctness edge the satellite task pins down: on the dict-backed
``compile=False`` path a ``DbGraph`` mutation bumps the view generation
and must invalidate cached results — two identical queries with a
mutation in between see two different graphs.
"""

import pytest

from repro.core.solver import RspqSolver
from repro.engine import QueryEngine, ResultCacheStats
from repro.graphs.dbgraph import DbGraph


def _graph():
    graph = DbGraph()
    for source, label, target in [
        (0, "a", 1), (1, "a", 2), (2, "b", 3), (3, "a", 0), (1, "b", 3),
    ]:
        graph.add_edge(source, label, target)
    return graph


class TestResultCacheHits:
    def test_second_identical_query_is_a_hit_with_identical_answer(self):
        engine = QueryEngine(_graph())
        first = engine.query("a*b", 0, 3)
        second = engine.query("a*b", 0, 3)
        assert first.stats.result_cache_hit is False
        assert second.stats.result_cache_hit is True
        assert second.found == first.found
        assert second.path == first.path
        assert second.strategy == first.strategy
        assert second.stats.steps == first.stats.steps
        assert second.stats.plan_cache_hit is True
        stats = engine.result_cache_stats()
        assert stats.enabled is True
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1

    def test_negative_answers_are_cached_too(self):
        engine = QueryEngine(_graph())
        first = engine.query("b*a", 3, 1)
        second = engine.query("b*a", 3, 1)
        assert first.found == second.found
        assert second.stats.result_cache_hit is True

    def test_short_circuit_results_are_cached(self):
        graph = _graph()
        graph.add_edge(7, "a", 8)  # disconnected island
        engine = QueryEngine(graph)
        first = engine.query("a*", 7, 0)
        second = engine.query("a*", 7, 0)
        assert first.stats.short_circuit is True
        assert second.stats.result_cache_hit is True
        assert second.stats.short_circuit is True
        assert second.found is False

    def test_different_endpoints_do_not_collide(self):
        engine = QueryEngine(_graph())
        engine.query("a*b", 0, 3)
        other = engine.query("a*b", 1, 3)
        assert other.stats.result_cache_hit is False

    def test_equivalent_languages_share_a_cache_entry(self):
        from repro.languages import Language

        engine = QueryEngine(_graph())
        engine.query(Language("a*b"), 0, 3)
        # Same language, different spelling: the plan key is the
        # canonical DFA signature, so the result replays.
        again = engine.query(Language("a*b", alphabet="ab"), 0, 3)
        assert again.stats.result_cache_hit is True

    def test_errors_are_never_cached(self):
        engine = QueryEngine(_graph())
        with pytest.raises(Exception):
            engine.query("a*b", 0, 99)  # unknown vertex
        stats = engine.result_cache_stats()
        assert stats.size == 0

    def test_hit_ignores_budget_and_deadline_overrides(self):
        # A cache hit consumes ~no resources, so work guards do not
        # apply to it: the engine returns the known-correct answer.
        engine = QueryEngine(_graph())
        first = engine.query("a*b", 0, 3)
        replay = engine.query("a*b", 0, 3, budget=1)
        assert replay.stats.result_cache_hit is True
        assert replay.path == first.path


class TestResultCacheKnobs:
    def test_disable_flag(self):
        engine = QueryEngine(_graph(), result_cache=False)
        engine.query("a*b", 0, 3)
        second = engine.query("a*b", 0, 3)
        assert second.stats.result_cache_hit is False
        stats = engine.result_cache_stats()
        assert stats.enabled is False
        assert stats.hits == 0

    def test_capacity_is_validated(self):
        with pytest.raises(ValueError, match="result cache capacity"):
            QueryEngine(_graph(), result_cache_size=0)

    def test_lru_eviction_keeps_the_cache_bounded(self):
        engine = QueryEngine(_graph(), result_cache_size=2)
        engine.query("a*b", 0, 3)
        engine.query("a*b", 1, 3)
        engine.query("a*b", 2, 3)  # evicts (0, 3)
        assert engine.result_cache_stats().size == 2
        evicted = engine.query("a*b", 0, 3)
        assert evicted.stats.result_cache_hit is False
        kept = engine.query("a*b", 2, 3)
        assert kept.stats.result_cache_hit is True

    def test_stats_since_delta(self):
        engine = QueryEngine(_graph())
        engine.query("a*b", 0, 3)
        before = engine.result_cache_stats()
        engine.query("a*b", 0, 3)
        delta = engine.result_cache_stats().since(before)
        assert delta.hits == 1
        assert delta.misses == 0
        assert isinstance(delta, ResultCacheStats)


class TestBatchIntegration:
    def test_repeated_queries_in_one_batch_hit_the_cache(self):
        engine = QueryEngine(_graph())
        batch = engine.run_batch([
            ("a*b", 0, 3),
            ("a*b", 0, 3),
            ("a*b", 0, 3),
        ])
        hits = [result.stats.result_cache_hit for result in batch]
        assert hits == [False, True, True]
        assert batch.result_cache_stats is not None
        assert batch.result_cache_stats.hits == 2
        assert "results: 2 cache hits" in batch.summary()

    def test_batch_results_identical_to_direct_solver(self):
        graph = _graph()
        engine = QueryEngine(graph)
        queries = [("a*b", 0, 3), ("a*b", 0, 3), ("(aa)*", 0, 2)]
        batch = engine.run_batch(queries)
        for (regex, source, target), result in zip(queries, batch):
            direct = RspqSolver(regex).solve(graph, source, target)
            assert result.found == direct.found
            assert result.path == direct.path

    def test_disabled_cache_reports_none_on_batches(self):
        engine = QueryEngine(_graph(), result_cache=False)
        batch = engine.run_batch([("a*b", 0, 3), ("a*b", 0, 3)])
        assert batch.result_cache_stats is None

    def test_threaded_batch_shares_the_cache(self):
        engine = QueryEngine(_graph())
        queries = [("a*b", 0, 3)] * 12
        batch = engine.run_batch(queries, workers=4, mode="thread")
        assert batch.found_count == 12
        assert batch.result_cache_stats.hits >= 8  # all but the racers


class TestMutationInvalidation:
    """The satellite regression: mutate-between-identical-queries."""

    def test_dict_backed_engine_reflects_mutations(self):
        graph = DbGraph()
        graph.add_edge(0, "a", 1)
        graph.add_vertex(2)
        engine = QueryEngine(graph, compile=False)
        assert engine.view_kind == "dict"
        miss = engine.query("ab", 0, 2)
        assert miss.found is False
        assert miss.stats.result_cache_hit is False
        # Identical query, cache warm.
        assert engine.query("ab", 0, 2).stats.result_cache_hit is True
        # The mutation bumps the view generation: the cached NOT_FOUND
        # must die, and the rerun must see the new edge.
        graph.add_edge(1, "b", 2)
        changed = engine.query("ab", 0, 2)
        assert changed.stats.result_cache_hit is False
        assert changed.found is True
        assert changed.path.word == "ab"
        assert engine.result_cache_stats().invalidations == 1
        # Warm again on the new generation.
        assert engine.query("ab", 0, 2).stats.result_cache_hit is True

    def test_dict_backed_short_circuit_survives_mutations(self):
        graph = DbGraph()
        graph.add_edge(0, "a", 1)
        graph.add_vertex(9)
        engine = QueryEngine(graph, compile=False)
        blocked = engine.query("a*", 0, 9)
        assert blocked.stats.short_circuit is True
        graph.add_edge(1, "a", 9)
        opened = engine.query("a*", 0, 9)
        assert opened.found is True
        assert opened.stats.short_circuit is False

    def test_compiled_engine_is_a_frozen_snapshot(self):
        # The compiled path intentionally does NOT track mutations —
        # the compiled view is a snapshot (documented contract).
        graph = DbGraph()
        graph.add_edge(0, "a", 1)
        graph.add_vertex(2)
        engine = QueryEngine(graph)
        engine.query("ab", 0, 2)
        graph.add_edge(1, "b", 2)
        frozen = engine.query("ab", 0, 2)
        assert frozen.found is False
        assert frozen.stats.result_cache_hit is True

    def test_compile_false_requires_a_viewable_graph(self):
        with pytest.raises(ValueError, match="compile=False"):
            QueryEngine(object(), compile=False)

    def test_cache_entries_are_tagged_with_the_views_generation(self):
        # The cache generation must come from the view the solve ran
        # on, not a later read of the live graph — otherwise a
        # mutation racing a solve could tag a stale answer with the
        # new generation.  Simulate the race by mutating after the
        # view exists but keeping a handle on the old view.
        graph = DbGraph()
        graph.add_edge(0, "a", 1)
        graph.add_vertex(2)
        engine = QueryEngine(graph, compile=False)
        stale_view = engine.view
        engine.query("ab", 0, 2)  # cached under stale_view.generation
        graph.add_edge(1, "b", 2)
        assert engine.view.generation != stale_view.generation
        # The post-mutation query must not see the stale NOT_FOUND.
        fresh = engine.query("ab", 0, 2)
        assert fresh.found is True
        assert fresh.stats.result_cache_hit is False

    def test_dict_backed_engine_matches_direct_solver_across_mutations(
        self,
    ):
        graph = _graph()
        engine = QueryEngine(graph, compile=False)
        for _round in range(3):
            for regex, source, target in [
                ("a*b", 0, 3), ("(aa)*", 0, 2), ("a*", 3, 1),
            ]:
                result = engine.query(regex, source, target)
                direct = RspqSolver(regex).solve(graph, source, target)
                assert result.found == direct.found
                assert result.path == direct.path
            graph.add_edge(3, "b", 1)
            graph.add_edge(1, "a", 4)


class TestServiceSurface:
    def test_registry_describe_carries_result_cache_and_index(self):
        from repro.service import GraphRegistry

        registry = GraphRegistry()
        registry.register("g", _graph())
        registry.engine("g").query("a*b", 0, 3)
        registry.engine("g").query("a*b", 0, 3)
        described = registry.get("g").describe()
        assert described["result_cache"]["hits"] == 1
        assert described["result_cache"]["enabled"] is True
        assert described["reachability_index"]["num_components"] >= 1

    def test_registry_knobs_flow_into_engines(self):
        from repro.service import GraphRegistry

        registry = GraphRegistry(
            result_cache=False, use_reach_index=False
        )
        registry.register("g", _graph())
        engine = registry.engine("g")
        assert engine.result_cache_stats().enabled is False
        assert engine.reachability_info() is None
