"""Tests for the color-coding k-RSPQ solver (Theorem 7)."""

import pytest

from tests.conftest import random_instance

from repro.algorithms.color_coding import ColorCodingSolver
from repro.algorithms.exact import ExactSolver
from repro.graphs.dbgraph import Path
from repro.graphs.generators import labeled_path
from repro.languages import language


class TestColorfulDp:
    def test_exact_coloring_finds_path(self):
        graph = labeled_path("aba")
        solver = ColorCodingSolver("aba")
        coloring = {0: 0, 1: 1, 2: 2, 3: 3}
        path = solver.colorful_path(graph, 0, 3, coloring, 4)
        assert path is not None
        assert path.word == "aba"

    def test_colliding_colors_hide_path(self):
        graph = labeled_path("aba")
        solver = ColorCodingSolver("aba")
        coloring = {0: 0, 1: 1, 2: 0, 3: 2}  # 0 and 2 share a color
        assert solver.colorful_path(graph, 0, 3, coloring, 4) is None

    def test_trivial_source_target(self):
        graph = labeled_path("a")
        solver = ColorCodingSolver("a*")
        assert solver.colorful_path(graph, 0, 0, {0: 0, 1: 1}, 2) == (
            Path.single(0)
        )


class TestExhaustiveFamily:
    def test_matches_exact_on_small_graphs(self):
        lang = language("a*ba*")
        cc = ColorCodingSolver(lang)
        exact = ExactSolver(lang)
        for seed in range(10):
            graph, x, y = random_instance(seed, "ab", max_vertices=5)
            k = 3
            truth_path = exact.shortest_simple_path(graph, x, y)
            truth = truth_path is not None and len(truth_path) <= k
            got = cc.exists(graph, x, y, k, family="exhaustive")
            assert got == truth, seed


class TestMonteCarloFamily:
    @pytest.mark.parametrize("regex", ["a*ba*", "(aa)*", "a*c*"])
    def test_matches_exact_with_high_probability(self, regex):
        lang = language(regex)
        cc = ColorCodingSolver(lang, seed=42)
        exact = ExactSolver(lang)
        alphabet = sorted(lang.alphabet)
        for seed in range(15):
            graph, x, y = random_instance(seed, alphabet, max_vertices=8)
            k = 4
            truth_path = exact.shortest_simple_path(graph, x, y)
            truth = truth_path is not None and len(truth_path) <= k
            got = cc.exists(graph, x, y, k)
            # One-sided error: positives are always certified.
            if got:
                assert truth
            else:
                assert not truth, (
                    "Monte-Carlo miss (prob < 1e-3) on seed %d" % seed
                )

    def test_positive_answers_are_certified(self):
        graph = labeled_path("ab")
        path = ColorCodingSolver("ab").bounded_simple_path(graph, 0, 2, 2)
        assert path is not None
        assert path.is_simple()
        assert path.word == "ab"

    def test_respects_length_bound(self):
        graph = labeled_path("aaaa")
        solver = ColorCodingSolver("a{4}")
        # Path needs 4 edges; bound of 3 must fail.
        assert not solver.exists(graph, 0, 4, 3)
        assert solver.exists(graph, 0, 4, 4)


class TestTrialCount:
    def test_trial_count_grows_with_k(self):
        solver = ColorCodingSolver("a*")
        assert solver._num_trials(3) < solver._num_trials(6)

    def test_failure_probability_scales_trials(self):
        strict = ColorCodingSolver("a*", failure_probability=1e-6)
        loose = ColorCodingSolver("a*", failure_probability=1e-1)
        assert strict._num_trials(4) > loose._num_trials(4)
