"""Tests for the color-coding k-RSPQ solver (Theorem 7)."""

import pytest

from tests.conftest import random_instance

from repro.algorithms.color_coding import ColorCodingSolver, trials_for_prob
from repro.algorithms.exact import ExactSolver
from repro.errors import BudgetExceededError, DeadlineExceededError
from repro.execution import ExecutionContext
from repro.graphs.dbgraph import Path
from repro.graphs.generators import labeled_path
from repro.languages import language


class TestColorfulDp:
    def test_exact_coloring_finds_path(self):
        graph = labeled_path("aba")
        solver = ColorCodingSolver("aba")
        coloring = {0: 0, 1: 1, 2: 2, 3: 3}
        path = solver.colorful_path(graph, 0, 3, coloring, 4)
        assert path is not None
        assert path.word == "aba"

    def test_colliding_colors_hide_path(self):
        graph = labeled_path("aba")
        solver = ColorCodingSolver("aba")
        coloring = {0: 0, 1: 1, 2: 0, 3: 2}  # 0 and 2 share a color
        assert solver.colorful_path(graph, 0, 3, coloring, 4) is None

    def test_trivial_source_target(self):
        graph = labeled_path("a")
        solver = ColorCodingSolver("a*")
        assert solver.colorful_path(graph, 0, 0, {0: 0, 1: 1}, 2) == (
            Path.single(0)
        )


class TestExhaustiveFamily:
    def test_matches_exact_on_small_graphs(self):
        lang = language("a*ba*")
        cc = ColorCodingSolver(lang)
        exact = ExactSolver(lang)
        for seed in range(10):
            graph, x, y = random_instance(seed, "ab", max_vertices=5)
            k = 3
            truth_path = exact.shortest_simple_path(graph, x, y)
            truth = truth_path is not None and len(truth_path) <= k
            got = cc.exists(graph, x, y, k, family="exhaustive")
            assert got == truth, seed

    @pytest.mark.parametrize("regex", ["a*ba*", "(aa)*"])
    def test_shortest_matches_exact_path_for_path(self, regex):
        # The exhaustive family is deterministic, so with
        # ``shortest=True`` the solver must reproduce the exact
        # solver's bounded answer length-for-length — not just the
        # yes/no bit.
        lang = language(regex)
        cc = ColorCodingSolver(lang)
        exact = ExactSolver(lang)
        for seed in range(8):
            graph, x, y = random_instance(seed, "ab", max_vertices=5)
            k = 3
            truth = exact.shortest_simple_path(graph, x, y)
            if truth is not None and len(truth) > k:
                truth = None
            got = cc.bounded_simple_path(
                graph, x, y, k, family="exhaustive", shortest=True
            )
            if truth is None:
                assert got is None, (regex, seed)
            else:
                assert got is not None, (regex, seed)
                assert len(got) == len(truth), (regex, seed)
                assert got.is_simple()
                assert lang.accepts(got.word)


class TestMonteCarloFamily:
    @pytest.mark.parametrize("regex", ["a*ba*", "(aa)*", "a*c*"])
    def test_matches_exact_with_high_probability(self, regex):
        lang = language(regex)
        cc = ColorCodingSolver(lang, seed=42)
        exact = ExactSolver(lang)
        alphabet = sorted(lang.alphabet)
        for seed in range(15):
            graph, x, y = random_instance(seed, alphabet, max_vertices=8)
            k = 4
            truth_path = exact.shortest_simple_path(graph, x, y)
            truth = truth_path is not None and len(truth_path) <= k
            got = cc.exists(graph, x, y, k)
            # One-sided error: positives are always certified.
            if got:
                assert truth
            else:
                assert not truth, (
                    "Monte-Carlo miss (prob < 1e-3) on seed %d" % seed
                )

    def test_positive_answers_are_certified(self):
        graph = labeled_path("ab")
        path = ColorCodingSolver("ab").bounded_simple_path(graph, 0, 2, 2)
        assert path is not None
        assert path.is_simple()
        assert path.word == "ab"

    def test_respects_length_bound(self):
        graph = labeled_path("aaaa")
        solver = ColorCodingSolver("a{4}")
        # Path needs 4 edges; bound of 3 must fail.
        assert not solver.exists(graph, 0, 4, 3)
        assert solver.exists(graph, 0, 4, 4)


class TestTrialCount:
    def test_trial_count_grows_with_k(self):
        solver = ColorCodingSolver("a*")
        assert solver._num_trials(3) < solver._num_trials(6)

    def test_failure_probability_scales_trials(self):
        strict = ColorCodingSolver("a*", failure_probability=1e-6)
        loose = ColorCodingSolver("a*", failure_probability=1e-1)
        assert strict._num_trials(4) > loose._num_trials(4)

    def test_single_vertex_paths_need_one_trial(self):
        # Every coloring renders a one-vertex path colorful.
        assert trials_for_prob(1, 1, 1e-9) == 1

    def test_calibration_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            trials_for_prob(4, 4, 0.0)
        with pytest.raises(ValueError):
            trials_for_prob(0, 4, 1e-3)
        with pytest.raises(ValueError):
            # A path on more vertices than colors is never colorful.
            trials_for_prob(5, 4, 1e-3)


class TestExistenceEarlyExit:
    def test_first_witness_ends_the_solve(self):
        # Existence mode must return on the first certifying trial;
        # ``shortest=True`` keeps drawing colorings.  The step counters
        # make the difference observable without timing.
        graph = labeled_path("aaaa")
        solver = ColorCodingSolver("a{4}")
        fast = ExecutionContext()
        path = solver.bounded_simple_path(graph, 0, 4, 4, ctx=fast)
        assert path is not None
        slow = ExecutionContext()
        best = solver.bounded_simple_path(
            graph, 0, 4, 4, ctx=slow, shortest=True
        )
        assert best is not None and len(best) == len(path)
        assert fast.steps < slow.steps

    def test_shortest_flag_still_certifies_shortest(self):
        # Two witnesses of different lengths: a*ba* from 0 to 3 via
        # the direct b edge (1 edge) or the long way (3 edges).
        graph = labeled_path("aba")
        graph.add_edge(0, "b", 3)
        solver = ColorCodingSolver("a*ba*", seed=5)
        best = solver.bounded_simple_path(graph, 0, 3, 3, shortest=True)
        assert best is not None
        assert len(best) == 1


class TestTrialDecorrelation:
    def test_streams_differ_across_queries(self):
        solver = ColorCodingSolver("a*", seed=0)
        same = solver._trial_rng(0, 1, 0)
        twin = solver._trial_rng(0, 1, 0)
        other_query = solver._trial_rng(0, 2, 0)
        other_trial = solver._trial_rng(0, 1, 1)
        draw = lambda rng: [rng.randrange(1 << 30) for _ in range(8)]
        reference = draw(same)
        assert draw(twin) == reference
        assert draw(other_query) != reference
        assert draw(other_trial) != reference

    def test_string_seeding_distinguishes_types(self):
        # %r-seeding keeps vertex 1 and vertex "1" on distinct
        # streams (tuple seeds would raise, str() would collide).
        solver = ColorCodingSolver("a*", seed=0)
        ints = solver._trial_rng(0, 1, 0)
        strs = solver._trial_rng(0, "1", 0)
        assert [ints.randrange(100) for _ in range(8)] != (
            [strs.randrange(100) for _ in range(8)]
        )


class TestBudgetAndDeadline:
    def test_budget_bites_inside_a_trial(self):
        graph = labeled_path("aaaa")
        solver = ColorCodingSolver("a{4}")
        ctx = ExecutionContext(budget=1)
        with pytest.raises(BudgetExceededError):
            solver.bounded_simple_path(graph, 0, 4, 4, ctx=ctx)

    def test_deadline_bites_inside_a_trial(self):
        # An already-expired deadline with a per-charge check interval
        # must fire during the first BFS layer, not between trials.
        graph = labeled_path("aaaa")
        solver = ColorCodingSolver("a{4}")
        ctx = ExecutionContext(
            deadline_seconds=0.0, deadline_check_interval=1
        )
        with pytest.raises(DeadlineExceededError):
            solver.bounded_simple_path(graph, 0, 4, 4, ctx=ctx)
