"""Unit and property tests for the NFA layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AutomatonError
from repro.languages.dfa import from_nfa
from repro.languages.nfa import (
    NFA,
    empty_nfa,
    epsilon_nfa,
    literal_nfa,
    nfa_from_ast,
    star_nfa,
    word_nfa,
)
from repro.languages.regex.parser import parse


class TestBasics:
    def test_literal_accepts_only_its_letter(self):
        nfa = literal_nfa("a")
        assert nfa.accepts("a")
        assert not nfa.accepts("")
        assert not nfa.accepts("aa")

    def test_word_nfa(self):
        nfa = word_nfa("abc")
        assert nfa.accepts("abc")
        assert not nfa.accepts("ab")
        assert not nfa.accepts("abcd")

    def test_epsilon_nfa(self):
        nfa = epsilon_nfa()
        assert nfa.accepts("")

    def test_empty_nfa(self):
        nfa = empty_nfa()
        assert nfa.is_empty()

    def test_invalid_transition_target(self):
        with pytest.raises(AutomatonError):
            NFA([0], ["a"], {0: [("a", 99)]}, [0], [0])

    def test_unknown_initial_state(self):
        with pytest.raises(AutomatonError):
            NFA([0], ["a"], {0: []}, [7], [0])


class TestCombinators:
    def test_concat(self):
        nfa = word_nfa("ab").concat(word_nfa("c"))
        assert nfa.accepts("abc")
        assert not nfa.accepts("ab")

    def test_union(self):
        nfa = word_nfa("ab").union(word_nfa("ba"))
        assert nfa.accepts("ab")
        assert nfa.accepts("ba")
        assert not nfa.accepts("aa")

    def test_star(self):
        nfa = star_nfa(word_nfa("ab"))
        for word, expected in [("", True), ("ab", True), ("abab", True),
                               ("aba", False)]:
            assert nfa.accepts(word) is expected

    def test_power(self):
        nfa = word_nfa("a").power(3)
        assert nfa.accepts("aaa")
        assert not nfa.accepts("aa")
        assert not nfa.accepts("aaaa")

    def test_power_zero_is_epsilon(self):
        nfa = word_nfa("a").power(0)
        assert nfa.accepts("")
        assert not nfa.accepts("a")

    def test_reverse(self):
        nfa = word_nfa("abc").reverse()
        assert nfa.accepts("cba")
        assert not nfa.accepts("abc")

    def test_shortest_accepted(self):
        nfa = nfa_from_ast(parse("aaa + b"))
        assert nfa.shortest_accepted() == "b"

    def test_shortest_accepted_empty_language(self):
        assert empty_nfa().shortest_accepted() is None

    def test_intersect_dfa(self):
        dfa = from_nfa(nfa_from_ast(parse("a*b")))
        nfa = nfa_from_ast(parse("(a+b)(a+b)"))
        both = nfa.intersect_dfa(dfa)
        assert both.accepts("ab")
        assert not both.accepts("ba")
        assert not both.accepts("b")


class TestThompson:
    @pytest.mark.parametrize(
        "text,accepted,rejected",
        [
            ("(aa)*", ["", "aa", "aaaa"], ["a", "aaa"]),
            ("a*ba*", ["b", "ab", "aabaa"], ["", "a", "bb"]),
            ("a{2,3}", ["aa", "aaa"], ["a", "aaaa"]),
            ("a{2,}", ["aa", "aaaaa"], ["", "a"]),
            ("[ab]?c", ["c", "ac", "bc"], ["", "abc"]),
            ("a*(bb+ + ε)c*", ["", "abbc", "bbb", "ac"], ["bc", "abc"]),
        ],
    )
    def test_language_membership(self, text, accepted, rejected):
        nfa = nfa_from_ast(parse(text))
        for word in accepted:
            assert nfa.accepts(word), (text, word)
        for word in rejected:
            assert not nfa.accepts(word), (text, word)


@st.composite
def _regex_text(draw):
    """Small random regexes over {a, b}."""
    depth = draw(st.integers(0, 2))

    def build(level):
        if level == 0:
            return draw(st.sampled_from(["a", "b", "ab", "ba", "eps"]))
        left = build(level - 1)
        right = build(level - 1)
        shape = draw(st.sampled_from(["(%s)(%s)", "(%s) + (%s)", "(%s)*%s"]))
        return shape % (left, right)

    return build(depth)


class TestNfaDfaAgreement:
    @given(_regex_text(), st.lists(st.sampled_from("ab"), max_size=6))
    @settings(max_examples=120, deadline=None)
    def test_subset_construction_preserves_membership(self, text, letters):
        word = "".join(letters)
        nfa = nfa_from_ast(parse(text))
        dfa = from_nfa(nfa, alphabet={"a", "b"})
        assert dfa.accepts(word) == nfa.accepts(word)
