"""Tests for the polynomial trC solver (anchored nice-path search)."""

import pytest

from tests.conftest import paths_agree, random_instance

from repro import catalog
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.graphs.dbgraph import Path
from repro.graphs.generators import (
    component_chain_graph,
    figure3_graph,
    figure4_graph,
    labeled_cycle,
    labeled_path,
)
from repro.languages import language


class TestBasicQueries:
    def test_straight_line(self):
        solver = TractableSolver(language("a*"))
        graph = labeled_path("aaaa")
        path = solver.shortest_simple_path(graph, 0, 4)
        assert path is not None
        assert path.word == "aaaa"

    def test_no_path(self):
        solver = TractableSolver(language("a*"))
        graph = labeled_path("ab")
        assert solver.shortest_simple_path(graph, 0, 2) is None

    def test_source_equals_target_with_epsilon(self):
        solver = TractableSolver(language("a*"))
        graph = labeled_cycle("aaa")
        path = solver.shortest_simple_path(graph, 0, 0)
        assert path == Path.single(0)

    def test_source_equals_target_without_epsilon(self):
        solver = TractableSolver(language("ab^+"))
        graph = labeled_cycle("ab")
        assert solver.shortest_simple_path(graph, 0, 0) is None

    def test_unknown_vertex_raises(self):
        from repro.errors import GraphError

        solver = TractableSolver(language("a*"))
        graph = labeled_path("a")
        with pytest.raises(GraphError):
            solver.shortest_simple_path(graph, 0, 99)

    def test_result_is_simple_and_in_language(self):
        lang = language("a*(bb^+ + eps)c*")
        solver = TractableSolver(lang)
        graph, x, y = component_chain_graph(["aaa", "bb", "cc"], seed=7)
        path = solver.shortest_simple_path(graph, x, y)
        assert path is not None
        assert path.is_simple()
        assert lang.accepts(path.word)


class TestPaperFigures:
    def test_figure3_nice_path(self):
        lang = language("a(c{2,} + eps)(a+b)*(ac)?a*")
        graph, x, y = figure3_graph()
        path = TractableSolver(lang).shortest_simple_path(graph, x, y)
        exact = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert path is not None
        assert len(path) == len(exact)
        assert lang.accepts(path.word)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_figure4_faithful_family_is_negative(self, k):
        # The paper's loop-elimination counterexample: a walk exists but
        # no simple L-labeled path; both solvers must say no.
        lang = language("a*(bb^+ + eps)c*")
        graph, x, y = figure4_graph(k)
        assert TractableSolver(lang).shortest_simple_path(graph, x, y) is None
        assert ExactSolver(lang).shortest_simple_path(graph, x, y) is None

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_figure4_cross_family_is_positive(self, k):
        # The k-edge-bridge variant: the cut-across simple path exists
        # and the nice-path discipline must find it (shortest).
        from repro.graphs.generators import figure4_cross_graph

        lang = language("a*(bb^+ + eps)c*")
        graph, x, y = figure4_cross_graph(k)
        path = TractableSolver(lang).shortest_simple_path(graph, x, y)
        exact = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert path is not None
        assert len(path) == len(exact) == 3 * k


class TestExample1Algorithm:
    """Example 1's case analysis, realised by the generic solver."""

    def test_pure_ac_path(self):
        lang = language("a*(bb^+ + eps)c*")
        solver = TractableSolver(lang)
        graph = labeled_path("aacc")
        path = solver.shortest_simple_path(graph, 0, 4)
        assert path.word == "aacc"

    def test_forced_bb_segment(self):
        lang = language("a*(bb^+ + eps)c*")
        solver = TractableSolver(lang)
        graph = labeled_path("abbc")
        path = solver.shortest_simple_path(graph, 0, 4)
        assert path.word == "abbc"

    def test_single_b_is_rejected(self):
        lang = language("a*(bb^+ + eps)c*")
        solver = TractableSolver(lang)
        graph = labeled_path("abc")
        assert solver.shortest_simple_path(graph, 0, 3) is None

    def test_long_b_run(self):
        lang = language("a*(bb^+ + eps)c*")
        solver = TractableSolver(lang)
        graph = labeled_path("a" + "b" * 7 + "cc")
        path = solver.shortest_simple_path(graph, 0, 10)
        assert path is not None
        assert path.word == "a" + "b" * 7 + "cc"


class TestOracleAgreement:
    """The heart of the validation: agree with the exact solver."""

    @pytest.mark.parametrize(
        "entry", catalog.tractable_entries(), ids=lambda e: e.name
    )
    def test_random_graphs(self, entry):
        lang = entry.language()
        alphabet = sorted(lang.alphabet) or ["a"]
        solver = TractableSolver(lang)
        exact = ExactSolver(lang)
        for seed in range(30):
            graph, x, y = random_instance(seed, alphabet)
            mine = solver.shortest_simple_path(graph, x, y)
            truth = exact.shortest_simple_path(graph, x, y)
            assert paths_agree(mine, truth), (entry.name, seed, mine, truth)

    def test_dense_graph_agreement(self):
        lang = language("a*(bb^+ + eps)c*")
        solver = TractableSolver(lang)
        exact = ExactSolver(lang)
        for seed in range(8):
            graph, x, y = random_instance(1000 + seed, "abc", max_vertices=9)
            mine = solver.shortest_simple_path(graph, x, y)
            truth = exact.shortest_simple_path(graph, x, y)
            assert paths_agree(mine, truth), (seed, mine, truth)


class TestStats:
    def test_stats_populated(self):
        solver = TractableSolver(language("a*c*"))
        graph = labeled_path("aac")
        solver.shortest_simple_path(graph, 0, 3)
        assert solver.last_stats is not None
        assert solver.last_stats.dfs_steps > 0

    def test_budget_limits_work(self):
        solver = TractableSolver(language("a*c*"), dfs_budget=1)
        graph = labeled_path("aac")
        # With a one-step budget the search gives up (soundly: no path
        # claimed); existence must then be decided by other means.
        solver.shortest_simple_path(graph, 0, 3)
        assert solver.last_stats.dfs_steps >= 1
