"""Vectorized batch execution: grouped CSR sweeps ≡ per-query solving.

The contract under test, end to end: ``run_batch`` with vectorization
on answers every query **identically** — found/path/strategy/error,
field for field — to the strictly per-query path, under every
scheduler (serial, thread pool, worker processes).  The sweep may only
change *how* an answer is produced (proven negatives skip the solver;
positives fall back to it), never *what* the answer is.

Structure:

* unit tests for :func:`group_by_plan` and :func:`sweep_group` (the
  sweep core in isolation: positives, proven negatives, the ε-case,
  per-member budget expiry, witness-walk validity);
* deterministic differential tests on a hand-built graph where each
  outcome class (fallback positive, swept negative, peeled
  short-circuit, deferred duplicate) is forced by construction;
* hypothesis/randomized differential sweeps over mixed-regime
  workloads comparing all schedulers;
* serving-counter parity: a vectorized registry reports the same
  plan-cache / result-cache / per-graph counters as a serial one;
* the knob surface: engine + ``run_batch`` validation, ``/batch``
  payload keys, ``vectorized_stats`` in the wire record, CLI flags.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from benchmarks.workloads import mixed_workload

from repro.cli import main
from repro.engine import (
    IndexedGraph,
    QueryEngine,
    VectorizedBatchStats,
    group_by_plan,
)
from repro.engine.vectorized import iter_members, sweep_group, sweepable
from repro.errors import ServiceError
from repro.execution import ExecutionContext, GroupExecution
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import labeled_cycle
from repro.graphs import io as graph_io
from repro.service import (
    GraphRegistry,
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
)
from repro.service.protocol import RESULT_FIELDS, batch_record


def assert_same_answers(reference, results, include_stats=False):
    """Field-for-field identity of two result lists.

    ``include_stats`` additionally pins steps and per-query flags —
    used across schedulers of the *same* execution strategy, where
    even the accounting must not depend on worker count.
    """
    assert len(results) == len(reference)
    for ref, res in zip(reference, results):
        assert res.language == ref.language
        assert res.source == ref.source
        assert res.target == ref.target
        assert res.strategy == ref.strategy
        assert res.found == ref.found
        assert res.length == ref.length
        assert res.decompose_failed == ref.decompose_failed
        assert res.error == ref.error
        if ref.path is None:
            assert res.path is None
        else:
            assert res.path is not None
            assert res.path.word == ref.path.word
            assert list(res.path.vertices) == list(ref.path.vertices)
        if include_stats:
            assert res.stats.steps == ref.stats.steps
            assert res.stats.vectorized == ref.stats.vectorized
            assert res.stats.result_cache_hit == ref.stats.result_cache_hit
            assert res.stats.short_circuit == ref.stats.short_circuit


def sweep_graph():
    """A graph where ``ab`` forces each sweep outcome by construction.

    ``0 -b-> 1 -a-> 2`` is label-closure reachable from 0 to 2 (both
    letters occur on the walk) but carries no ``ab``-ordered walk, so
    the reachability index cannot short-circuit 0→2 while the sweep
    proves it negative.  ``0 -a-> 3 -b-> 4`` gives a genuine positive.
    ``5`` is isolated, so 0→5 is short-circuited by the index.
    """
    return DbGraph.from_edges([
        (0, "b", 1), (1, "a", 2),
        (0, "a", 3), (3, "b", 4),
        (5, "c", 5),
    ])


#: One of each outcome class, plus a duplicate of the positive.
SWEEP_QUERIES = [
    ("ab", 0, 4),   # positive: sweep witnesses, solver answers
    ("ab", 0, 2),   # sweep-proven negative (index cannot see it)
    ("ab", 0, 5),   # reachability-index short-circuit, peeled pre-sweep
    ("ab", 0, 4),   # duplicate pair: deferred, replayed from the cache
    ("c*", 5, 5),   # second group, below the default min size
]


class TestGroupByPlan:
    def test_groups_share_a_key_and_keep_positions(self):
        pairs = list(enumerate([
            ("a*", 0, 1), ("b", 2, 3), ("a*", 4, 5), ("a*", 0, 1),
        ]))
        groups, ungroupable = group_by_plan(pairs)
        assert ungroupable == []
        sizes = sorted(len(members) for members in groups.values())
        assert sizes == [1, 3]
        (a_star,) = [g for g in groups.values() if len(g) == 3]
        assert [position for position, _query in a_star] == [0, 2, 3]
        assert a_star[1][1] == ("a*", 4, 5)

    def test_equivalent_languages_share_a_group(self):
        from repro.languages import language

        pairs = [(0, (language("a|b"), 0, 1)), (1, (language("b|a"), 2, 3))]
        groups, ungroupable = group_by_plan(pairs)
        assert ungroupable == []
        assert len(groups) == 1

    def test_unkeyable_language_is_ungroupable(self):
        pairs = [(0, ("a*", 0, 1)), (1, (123, 0, 1)), (2, ("a*", 2, 3))]
        groups, ungroupable = group_by_plan(pairs)
        assert len(groups) == 1
        (members,) = groups.values()
        assert [position for position, _query in members] == [0, 2]
        assert ungroupable == [(1, (123, 0, 1))]


class TestSweepGroupUnit:
    @pytest.fixture(scope="class")
    def compiled(self):
        graph = IndexedGraph(sweep_graph())
        engine = QueryEngine(graph)
        return graph, engine

    def run_sweep(self, compiled, regex, endpoints, contexts=None):
        graph, engine = compiled
        plan, _hit = engine.plan_for(regex)
        view = graph.view()
        assert sweepable(view, plan, (plan.strategy,))
        pending = [
            (member, graph.vertex_id(source), graph.vertex_id(target))
            for member, (source, target) in enumerate(endpoints)
        ]
        if contexts is None:
            contexts = {
                member: ExecutionContext() for member, _s, _t in pending
            }
        group = GroupExecution(contexts)
        return sweep_group(view, plan, pending, group), plan, graph

    def test_positive_and_proven_negative(self, compiled):
        outcome, _plan, _graph = self.run_sweep(
            compiled, "ab", [(0, 4), (0, 2)]
        )
        assert outcome.positives == [0]
        assert outcome.negatives == [1]
        assert outcome.expired == {}
        # Both members rode every round until decided.
        assert outcome.rounds >= 1
        assert outcome.steps_of(0) >= 1
        assert outcome.steps_of(1) >= 1

    def test_witness_walk_is_a_real_accepting_walk(self, compiled):
        outcome, plan, graph = self.run_sweep(compiled, "ab", [(0, 4)])
        vertices, labels = outcome.witness_walk(0)
        view = graph.view()
        assert vertices[0] == graph.vertex_id(0)
        assert vertices[-1] == graph.vertex_id(4)
        assert len(labels) == len(vertices) - 1
        # Every step is a real edge with the claimed label...
        for here, label_id, there in zip(vertices, labels, vertices[1:]):
            indptr, targets = view.out_csr(label_id)
            row = targets[indptr[here]:indptr[here + 1]]
            assert there in row
        # ...and the word the labels spell is in the language.
        word = "".join(view.label_at(label_id) for label_id in labels)
        assert plan.solver.language.dfa.accepts(word)

    def test_epsilon_self_query_is_an_immediate_positive(self, compiled):
        outcome, _plan, _graph = self.run_sweep(compiled, "a*", [(2, 2)])
        assert outcome.positives == [0]
        assert outcome.rounds == 0
        assert outcome.steps_of(0) == 0

    def test_unreachable_member_is_negative_without_a_witness(
        self, compiled
    ):
        outcome, _plan, _graph = self.run_sweep(compiled, "ab", [(4, 0)])
        assert outcome.negatives == [0]
        with pytest.raises(KeyError):
            outcome.witness_walk(0)

    def test_budget_expiry_peels_only_the_budgeted_member(self):
        # An 11-a cycle: "a*b" never accepts (no b edge), so both
        # members sweep until their frontier dies — unless their own
        # budget trips first.
        graph = IndexedGraph(labeled_cycle("a" * 11))
        engine = QueryEngine(graph, use_reach_index=False)
        plan, _hit = engine.plan_for("a*b")
        contexts = {0: ExecutionContext(budget=3), 1: ExecutionContext()}
        group = GroupExecution(contexts)
        outcome = sweep_group(
            graph.view(), plan, [(0, 0, 5), (1, 0, 5)], group
        )
        assert list(outcome.expired) == [0]
        assert "budget" in str(outcome.expired[0])
        assert outcome.negatives == [1]
        # The tripping charge is counted, exactly as a serial context.
        assert outcome.steps_of(0) == 4
        assert outcome.steps_of(1) > 4   # kept sweeping alone

    def test_iter_members_decodes_bitmaps(self):
        assert list(iter_members(0)) == []
        assert list(iter_members(0b1011)) == [0, 1, 3]
        assert list(iter_members(1 << 70)) == [70]


class TestGroupedMatchesSerialDeterministic:
    @pytest.fixture
    def graph(self):
        return sweep_graph()

    def test_answers_identical_and_outcomes_as_constructed(self, graph):
        serial = QueryEngine(graph).run_batch(
            SWEEP_QUERIES, vectorize=False
        )
        vectorized = QueryEngine(graph).run_batch(SWEEP_QUERIES)
        assert serial.stats is None
        assert_same_answers(serial.results, vectorized.results)

        positive, negative, short, duplicate, small = vectorized.results
        assert positive.found and not positive.stats.vectorized
        assert not negative.found and negative.stats.vectorized
        assert negative.error is None
        assert short.stats.short_circuit and not short.stats.vectorized
        assert duplicate.stats.result_cache_hit
        assert not small.stats.vectorized  # group of 1 never sweeps

        stats = vectorized.stats
        assert isinstance(stats, VectorizedBatchStats)
        assert stats.groups == 2
        assert stats.sweeps == 1
        assert stats.grouped_queries == len(SWEEP_QUERIES)
        assert stats.peeled_short_circuits == 1
        assert stats.swept_negatives == 1
        assert stats.deferred_duplicates == 1
        assert stats.fallback_solves >= 1
        assert "1 sweeps over 2 groups" in vectorized.summary()

    def test_duplicate_cache_accounting_matches_serial(self, graph):
        batch = [("ab", 0, 4)] * 3
        serial_engine = QueryEngine(graph)
        serial = serial_engine.run_batch(batch, vectorize=False)
        vec_engine = QueryEngine(graph)
        vectorized = vec_engine.run_batch(batch)
        assert_same_answers(serial.results, vectorized.results)
        flags = [r.stats.result_cache_hit for r in vectorized.results]
        assert flags == [
            r.stats.result_cache_hit for r in serial.results
        ]
        assert flags == [False, True, True]
        assert (
            vec_engine.result_cache_stats().hits
            == serial_engine.result_cache_stats().hits
        )

    def test_warm_result_cache_peels_before_the_sweep(self, graph):
        engine = QueryEngine(graph)
        engine.query("ab", 0, 2)
        batch = engine.run_batch([("ab", 0, 2), ("ab", 1, 2)])
        assert batch.stats.peeled_cache_hits == 1
        assert batch.results[0].stats.result_cache_hit

    def test_schedulers_agree_with_serial_vectorized(self, graph):
        queries = SWEEP_QUERIES * 3
        reference = QueryEngine(graph).run_batch(queries)
        for workers, mode in [(3, "thread"), (2, "process")]:
            batch = QueryEngine(graph).run_batch(
                queries, workers=workers, mode=mode
            )
            assert_same_answers(
                reference.results, batch.results, include_stats=True
            )
            assert batch.stats is not None
            assert (
                batch.stats.swept_negatives
                == reference.stats.swept_negatives
            )


class TestBudgetsAndDeadlines:
    """Per-query contracts bite exactly as serial: an effective budget
    or deadline disables group sweeps, so mid-batch expiry isolation is
    *the same code path* — pinned here against the serial engine."""

    @pytest.fixture
    def cycle(self):
        graph = labeled_cycle("a" * 301)
        graph.add_edge("p", "a", "q")
        graph.add_edge("q", "b", "r")
        return graph

    HEAVY_BATCH = [("ab + ba", "p", "r"), ("(aa)*", 0, 1), ("a*", "p", "q")]

    def test_engine_budget_disables_sweeps_and_matches_serial(self, cycle):
        vectorized = QueryEngine(cycle, exact_budget=50).run_batch(
            self.HEAVY_BATCH
        )
        serial = QueryEngine(cycle, exact_budget=50).run_batch(
            self.HEAVY_BATCH, vectorize=False
        )
        assert vectorized.stats.sweeps == 0
        assert_same_answers(
            serial.results, vectorized.results, include_stats=True
        )
        heavy = vectorized.results[1]
        assert heavy.error is not None and "budget" in heavy.error
        assert vectorized.results[0].error is None
        assert vectorized.results[2].error is None

    def test_batch_budget_override_disables_sweeps(self, cycle):
        batch = QueryEngine(cycle).run_batch(
            self.HEAVY_BATCH, budget=50
        )
        assert batch.stats.sweeps == 0
        assert batch.results[1].error is not None

    def test_batch_deadline_override_disables_sweeps(self):
        batch = QueryEngine(sweep_graph()).run_batch(
            SWEEP_QUERIES, deadline_seconds=60.0
        )
        assert batch.stats.sweeps == 0
        assert_same_answers(
            QueryEngine(sweep_graph())
            .run_batch(SWEEP_QUERIES, vectorize=False).results,
            batch.results,
        )


class TestFallbacks:
    def test_dict_backed_view_never_sweeps(self):
        graph = sweep_graph()
        engine = QueryEngine(graph, compile=False)
        batch = engine.run_batch(SWEEP_QUERIES)
        assert batch.stats is not None
        assert batch.stats.sweeps == 0
        assert_same_answers(
            QueryEngine(graph).run_batch(
                SWEEP_QUERIES, vectorize=False
            ).results,
            batch.results,
        )

    def test_group_min_size_above_group_sizes_never_sweeps(self):
        batch = QueryEngine(sweep_graph()).run_batch(
            SWEEP_QUERIES, group_min_size=100
        )
        assert batch.stats.sweeps == 0
        assert batch.stats.groups == 2

    def test_without_reach_index_solver_keeps_its_own_errors(self):
        # Unresolved vertex ids disable the sweep per member; the
        # solver still owns vertex validation and its error text.
        graph = sweep_graph()
        vectorized = QueryEngine(graph, use_reach_index=False).run_batch(
            [("ab", 0, 2), ("ab", 99, 2)]
        )
        serial = QueryEngine(graph, use_reach_index=False).run_batch(
            [("ab", 0, 2), ("ab", 99, 2)], vectorize=False
        )
        assert_same_answers(serial.results, vectorized.results)
        assert "unknown vertex" in vectorized.results[1].error


class TestKnobValidation:
    def test_engine_rejects_nonpositive_group_min_size(self):
        for bad in (0, -2):
            with pytest.raises(ValueError, match="group_min_size"):
                QueryEngine(sweep_graph(), group_min_size=bad)

    def test_run_batch_rejects_nonpositive_group_min_size(self):
        engine = QueryEngine(sweep_graph())
        with pytest.raises(ValueError, match="group_min_size"):
            engine.run_batch([("a*", 0, 1)], group_min_size=0)

    def test_run_batch_overrides_engine_defaults(self):
        # No result cache: the first batch must not pre-answer the
        # second, which needs a live group to sweep.  Distinct
        # endpoints keep both members in the group (a duplicate pair
        # would defer, dropping the group below the min size).
        engine = QueryEngine(
            sweep_graph(), vectorize=False, result_cache=False
        )
        queries = [("ab", 0, 2), ("ab", 1, 2)]
        assert engine.run_batch(queries).stats is None
        overridden = engine.run_batch(queries, vectorize=True)
        assert overridden.stats is not None
        assert overridden.stats.sweeps == 1


class TestRandomizedDifferential:
    """All schedulers agree on random mixed-regime workloads."""

    @pytest.fixture(scope="class")
    def workload(self):
        return mixed_workload(
            num_queries=48,
            seed=11,
            num_vertices=22,
            num_edges=66,
            hot_language="a*(bb^+ + eps)c*",
            hot_every=2,
        )

    def test_vectorized_matches_per_query(self, workload):
        graph, queries = workload
        serial = QueryEngine(graph).run_batch(queries, vectorize=False)
        vectorized = QueryEngine(graph).run_batch(queries)
        assert_same_answers(serial.results, vectorized.results)
        assert vectorized.stats.grouped_queries == len(queries)

    def test_thread_and_process_match_serial_vectorized(self, workload):
        graph, queries = workload
        reference = QueryEngine(graph).run_batch(queries)
        threaded = QueryEngine(graph).run_batch(queries, workers=4)
        assert_same_answers(
            reference.results, threaded.results, include_stats=True
        )
        processed = QueryEngine(graph).run_batch(
            queries[:24], workers=2, mode="process"
        )
        assert_same_answers(
            reference.results[:24], processed.results, include_stats=True
        )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_workloads_agree(self, seed):
        graph, queries = mixed_workload(
            num_queries=16, seed=seed, num_vertices=10, num_edges=26,
        )
        serial = QueryEngine(graph).run_batch(queries, vectorize=False)
        vectorized = QueryEngine(graph).run_batch(queries)
        assert_same_answers(serial.results, vectorized.results)
        threaded = QueryEngine(graph).run_batch(queries, workers=3)
        assert_same_answers(
            vectorized.results, threaded.results, include_stats=True
        )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_random_workloads_agree_under_a_budget(self, seed):
        # An effective budget keeps per-query contracts authoritative
        # (sweeps off) — expiry and isolation must stay identical.
        graph, queries = mixed_workload(
            num_queries=12, seed=seed, num_vertices=10, num_edges=26,
        )
        serial = QueryEngine(graph).run_batch(
            queries, vectorize=False, budget=5
        )
        vectorized = QueryEngine(graph).run_batch(queries, budget=5)
        assert vectorized.stats.sweeps == 0
        assert_same_answers(
            serial.results, vectorized.results, include_stats=True
        )


class TestServingCounterParity:
    """Vectorized serving increments per-graph counters exactly as
    serial serving does — cache hits and short-circuits inside a group
    are attributed identically (the PR-5 counter contract)."""

    def run_through_registry(self, **registry_kwargs):
        registry = GraphRegistry(**registry_kwargs)
        entry = registry.register("main", sweep_graph())
        for _round in range(2):  # second round exercises warm caches
            batch = entry.engine.run_batch(SWEEP_QUERIES)
            entry.record_batch(batch)
        description = entry.describe()
        return {
            key: description[key]
            for key in (
                "queries", "batches", "found", "errors",
                "plan_cache", "result_cache",
            )
        }

    def test_counters_identical_to_serial(self):
        vectorized = self.run_through_registry()
        serial = self.run_through_registry(vectorize=False)
        assert vectorized == serial

    def test_describe_reports_the_knobs(self):
        registry = GraphRegistry(vectorize=False, group_min_size=7)
        entry = registry.register("main", sweep_graph())
        assert entry.describe()["vectorized"] == {
            "enabled": False, "group_min_size": 7,
        }


class TestWireFormat:
    def test_result_fields_pin_the_vectorized_flag(self):
        assert "vectorized" in RESULT_FIELDS
        batch = QueryEngine(sweep_graph()).run_batch(SWEEP_QUERIES)
        record = batch_record(batch)
        for row in record["results"]:
            assert tuple(row) == RESULT_FIELDS
        assert record["vectorized_stats"] == batch.stats.as_dict()
        assert record["vectorized_stats"]["sweeps"] == 1

    def test_vectorized_stats_absent_when_disabled(self):
        batch = QueryEngine(sweep_graph()).run_batch(
            SWEEP_QUERIES, vectorize=False
        )
        assert "vectorized_stats" not in batch_record(batch)


class TestServiceSurface:
    @pytest.fixture
    def live(self):
        registry = GraphRegistry()
        registry.register("main", sweep_graph())
        service = QueryService(
            registry, ServiceConfig(workers=2, max_inflight=8)
        )
        with ServiceThread(service) as running:
            yield ServiceClient(port=running.port)

    def test_batch_carries_vectorized_stats(self, live):
        response = live.batch(SWEEP_QUERIES)
        assert response["vectorized_stats"]["sweeps"] == 1
        rows = response["results"]
        assert [row["vectorized"] for row in rows] == [
            False, True, False, False, False,
        ]

    def test_batch_vectorize_false_drops_the_stats(self, live):
        response = live.batch(SWEEP_QUERIES, vectorize=False)
        assert "vectorized_stats" not in response
        assert all(not row["vectorized"] for row in response["results"])

    def test_batch_group_min_size_is_honored(self, live):
        response = live.batch(SWEEP_QUERIES, group_min_size=100)
        assert response["vectorized_stats"]["sweeps"] == 0

    def test_bad_vectorize_payloads_are_400(self, live):
        for payload_patch in (
            {"vectorize": "yes"},
            {"group_min_size": 0},
            {"group_min_size": True},
            {"group_min_size": "2"},
        ):
            with pytest.raises(ServiceError) as info:
                live._checked("POST", "/batch", {
                    "queries": [["a*", 0, 2]], **payload_patch,
                })
            assert info.value.status == 400


class TestCliFlags:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        graph_io.dump(sweep_graph(), path)
        return str(path)

    @pytest.fixture
    def queries_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "".join(
                "%s %s %s\n" % (source, target, regex)
                for regex, source, target in SWEEP_QUERIES
            )
        )
        return str(path)

    def test_no_vectorize_gives_the_same_answers(
        self, capsys, graph_file, queries_file
    ):
        default_code = main(["batch", graph_file, queries_file])
        default_out = capsys.readouterr().out
        serial_code = main(
            ["batch", graph_file, queries_file, "--no-vectorize"]
        )
        serial_out = capsys.readouterr().out
        assert default_code == serial_code
        assert "vectorized: 1 sweeps over 2 groups" in default_out
        assert "sweeps over" not in serial_out

    def test_stats_flag_reports_the_vectorized_flag(
        self, capsys, graph_file, queries_file
    ):
        main(["batch", graph_file, queries_file, "--stats"])
        out = capsys.readouterr().out
        assert "vectorized=True" in out
        assert "vectorized=False" in out

    def test_nonpositive_group_min_size_is_usage_error(
        self, capsys, graph_file, queries_file
    ):
        code = main([
            "batch", graph_file, queries_file, "--group-min-size", "0",
        ])
        assert code == 2
        assert "--group-min-size" in capsys.readouterr().err
