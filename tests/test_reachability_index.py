"""The label-constrained reachability index (ISSUE-5 tentpole).

Three layers of guarantees:

* **Index soundness** — ``can_reach`` is an overapproximation of
  label-restricted reachability (never ``False`` for a truly reachable
  pair) and *exact* for the full label mask, on random graphs.
* **Pruned ≡ unpruned** — the hypothesis differential suite: solving
  with reachability pruning on is path-for-path identical to solving
  with it off, across random graphs × random regexes spanning all
  three trichotomy regimes, on both GraphView backends; and the pruned
  work counters are counter-for-counter identical across backends
  (both views condense to the same component partition).
* **Engine short-circuit** — provably unreachable queries answer
  NOT_FOUND with ``short_circuit=True`` and zero solver steps, and the
  answer matches a direct solve.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from benchmarks.workloads import random_regex

from repro.core.solver import RspqSolver
from repro.engine import IndexedGraph, QueryEngine
from repro.execution import ExecutionContext
from repro.graphs.dbgraph import DbGraph
from repro.graphs.reach import ReachabilityIndex, condense
from repro.languages.analysis import useful_symbols
from repro.languages import language


@st.composite
def random_graph(draw, alphabet="abc", max_vertices=9):
    num_vertices = draw(st.integers(2, max_vertices))
    letters = sorted(alphabet)
    num_edges = draw(st.integers(0, 3 * num_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.sampled_from(letters),
                st.integers(0, num_vertices - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    graph = DbGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for source, label, target in edges:
        graph.add_edge(source, label, target)
    return graph


def _chain_graph():
    graph = DbGraph()
    for source, label, target in [
        (0, "a", 1), (1, "a", 0),    # SCC {0, 1}
        (1, "b", 2),                  # bridge
        (2, "a", 3), (3, "a", 2),    # SCC {2, 3}
        (4, "c", 5),                  # island 4 -> 5
    ]:
        graph.add_edge(source, label, target)
    return graph


class TestCondense:
    def test_partition_and_reverse_topological_numbering(self):
        graph = _chain_graph()
        view = graph.view()
        comp_of, num_comps, label_edges = condense(
            view.num_vertices, view.out
        )
        ids = {vertex: view.vertex_id(vertex) for vertex in range(6)}
        assert comp_of[ids[0]] == comp_of[ids[1]]
        assert comp_of[ids[2]] == comp_of[ids[3]]
        assert comp_of[ids[0]] != comp_of[ids[2]]
        assert num_comps == 4
        # Every inter-component edge points to a smaller component id.
        for edges in label_edges:
            for comp_from, comp_to in edges:
                assert comp_to < comp_from

    def test_both_view_backends_condense_identically(self):
        graph = _chain_graph()
        indexed = IndexedGraph(graph)
        db_index = graph.view().reachability()
        csr_index = indexed.view().reachability()
        assert list(db_index.comp_of) == list(csr_index.comp_of)
        assert db_index.num_comps == csr_index.num_comps

    def test_empty_graph(self):
        comp_of, num_comps, label_edges = condense(0, lambda v: ())
        assert len(comp_of) == 0
        assert num_comps == 0
        assert label_edges == ()


class TestIndexSoundness:
    @given(random_graph())
    @settings(max_examples=60, deadline=None)
    def test_full_mask_is_exact_reachability(self, graph):
        view = graph.view()
        index = view.reachability()
        for source in graph.vertices():
            truth = graph.reachable_within(source)
            source_id = view.vertex_id(source)
            for target in graph.vertices():
                target_id = view.vertex_id(target)
                assert index.can_reach(source_id, target_id) == (
                    target in truth
                ), (source, target)

    @given(random_graph(), st.sets(st.sampled_from("abc"), max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_masked_reachability_is_a_sound_overapproximation(
        self, graph, allowed
    ):
        view = graph.view()
        index = view.reachability()
        mask = view.label_mask(allowed)
        restricted = graph.restricted_to_labels(allowed)
        for source in graph.vertices():
            truth = restricted.reachable_within(source)
            source_id = view.vertex_id(source)
            for target in graph.vertices():
                if target in truth:
                    # Never claim unreachable for a reachable pair.
                    assert index.can_reach(
                        source_id, target_id=view.vertex_id(target),
                        mask=mask,
                    ), (source, target, allowed)

    @given(random_graph(), st.sets(st.sampled_from("abc"), max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_filters_agree_with_can_reach(self, graph, allowed):
        view = graph.view()
        index = view.reachability()
        mask = view.label_mask(allowed)
        for source in graph.vertices():
            source_id = view.vertex_id(source)
            from_source = index.comps_from(source_id, mask)
            for target in graph.vertices():
                target_id = view.vertex_id(target)
                to_target = index.comps_to(target_id, mask)
                expected = index.can_reach(source_id, target_id, mask)
                assert bool(
                    from_source[index.comp_of[target_id]]
                ) == expected
                assert bool(
                    to_target[index.comp_of[source_id]]
                ) == expected


class TestReachableWithinDedupe:
    """IndexedGraph.reachable_within rides the index (same contract)."""

    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_unrestricted_matches_dbgraph(self, graph):
        indexed = IndexedGraph(graph)
        for vertex in graph.vertices():
            assert indexed.reachable_within(vertex) == (
                graph.reachable_within(vertex)
            )

    @given(random_graph(), st.sets(st.sampled_from("abc"), max_size=2))
    @settings(max_examples=40, deadline=None)
    def test_restricted_still_matches_dbgraph(self, graph, allowed):
        indexed = IndexedGraph(graph)
        for vertex in graph.vertices():
            assert indexed.reachable_within(
                vertex, allowed_labels=allowed
            ) == graph.reachable_within(vertex, allowed_labels=allowed)

    def test_forbidden_falls_back_to_the_walk(self):
        graph = _chain_graph()
        indexed = IndexedGraph(graph)
        assert indexed.reachable_within(0, forbidden={2}) == (
            graph.reachable_within(0, forbidden={2})
        )

    def test_superset_label_filter_uses_the_index_path(self):
        graph = _chain_graph()
        indexed = IndexedGraph(graph)
        # {a, b, c, z} covers every edge label: index-exact.
        assert indexed.reachable_within(
            0, allowed_labels={"a", "b", "c", "z"}
        ) == graph.reachable_within(0)


class TestUsefulSymbols:
    @pytest.mark.parametrize("regex, expected", [
        ("a*b", {"a", "b"}),
        ("a*", {"a"}),
        ("ab + ba", {"a", "b"}),
        ("(aa)*", {"a"}),
    ])
    def test_examples(self, regex, expected):
        assert useful_symbols(language(regex).dfa) == frozenset(expected)

    def test_completion_symbols_are_not_useful(self):
        # 'b' only exists as dead-state plumbing of the completion.
        lang = language("a*", alphabet="ab")
        assert useful_symbols(lang.dfa) == frozenset("a")

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_matches_letters_of_short_words(self, seed):
        regex = random_regex(random.Random(seed), alphabet="ab", max_depth=2)
        lang = language(regex)
        useful = useful_symbols(lang.dfa)
        seen = set()
        for word in lang.words(6, limit=500):
            seen.update(word)
        # Every letter of a real word is useful (the converse needs
        # longer words than we enumerate, so only this direction).
        assert seen <= useful


REGEX_SEEDS = st.integers(0, 10 ** 6)


def _seeded_regex(seed, alphabet="abc"):
    return random_regex(random.Random(seed), alphabet=alphabet, max_depth=2)


@st.composite
def graph_and_query(draw):
    graph = draw(random_graph())
    vertices = sorted(graph.vertices(), key=repr)
    source = draw(st.sampled_from(vertices))
    target = draw(st.sampled_from(vertices))
    return graph, source, target


class TestPrunedUnprunedDifferential:
    """Index-pruned solving ≡ unpruned solving, both view backends.

    The satellite suite: across random graphs × random regexes, the
    pruned solver returns the same path as the unpruned one (pruning
    only ever removes provably dead work), and the pruned work
    counters are identical across the DbGraph and CSR views (both
    backends condense identically, so they prune identically).
    """

    @given(graph_and_query(), REGEX_SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_paths_identical_and_counters_view_independent(
        self, instance, seed
    ):
        graph, source, target = instance
        regex = _seeded_regex(seed)
        indexed = IndexedGraph(graph)
        pruned = RspqSolver(regex, use_reach_pruning=True)
        unpruned = RspqSolver(regex, use_reach_pruning=False)

        contexts = {}
        results = {}
        for name, solver, backing in [
            ("db_pruned", pruned, graph),
            ("csr_pruned", pruned, indexed),
            ("db_plain", unpruned, graph),
            ("csr_plain", unpruned, indexed),
        ]:
            ctx = ExecutionContext()
            results[name] = solver.shortest_simple_path(
                backing, source, target, ctx=ctx
            )
            contexts[name] = ctx

        baseline = results["db_plain"]
        for name, path in results.items():
            assert (path is None) == (baseline is None), name
            if baseline is not None:
                assert path.vertices == baseline.vertices, name
                assert path.word == baseline.word, name
        # Pruned work identical across backends (partition canonical).
        assert pruned.steps_in(contexts["db_pruned"]) == (
            pruned.steps_in(contexts["csr_pruned"])
        )
        # Pruning never does more work than not pruning.
        assert pruned.steps_in(contexts["csr_pruned"]) <= (
            unpruned.steps_in(contexts["csr_plain"])
        )


class TestEngineShortCircuit:
    def test_unreachable_query_short_circuits(self):
        graph = _chain_graph()
        engine = QueryEngine(graph, result_cache=False)
        result = engine.query("a*b", 4, 0)  # island cannot reach the chain
        assert result.found is False
        assert result.path is None
        assert result.stats.short_circuit is True
        assert result.stats.steps == 0
        # Identical to the solver's own answer.
        direct = RspqSolver("a*b").solve(graph, 4, 0)
        assert direct.found is False
        assert result.strategy == direct.strategy

    def test_label_mask_short_circuits_beyond_connectivity(self):
        # 4 -> 5 exists but only via 'c'; L = a*b can never use it.
        graph = _chain_graph()
        engine = QueryEngine(graph, result_cache=False)
        result = engine.query("a*b", 4, 5)
        assert result.found is False
        assert result.stats.short_circuit is True

    def test_reachable_query_runs_the_solver(self):
        graph = _chain_graph()
        engine = QueryEngine(graph, result_cache=False)
        result = engine.query("a*ba*", 0, 3)
        assert result.found is True
        assert result.stats.short_circuit is False

    def test_self_query_is_never_short_circuited(self):
        graph = _chain_graph()
        engine = QueryEngine(graph, result_cache=False)
        result = engine.query("a*", 4, 4)
        assert result.found is True  # empty word
        assert result.stats.short_circuit is False

    def test_disable_flag_runs_the_solver(self):
        graph = _chain_graph()
        engine = QueryEngine(
            graph, result_cache=False, use_reach_index=False
        )
        result = engine.query("a*b", 4, 0)
        assert result.found is False
        assert result.stats.short_circuit is False
        assert engine.reachability_info() is None

    def test_exists_short_circuits(self):
        graph = _chain_graph()
        engine = QueryEngine(graph, result_cache=False)
        assert engine.exists("a*b", 4, 0) is False
        assert engine.exists("a*ba*", 0, 3) is True

    @given(graph_and_query(), REGEX_SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_engine_matches_direct_solver_on_random_inputs(
        self, instance, seed
    ):
        graph, source, target = instance
        regex = _seeded_regex(seed)
        engine = QueryEngine(graph)
        result = engine.query(regex, source, target)
        direct = RspqSolver(regex).solve(graph, source, target)
        assert result.found == direct.found
        if direct.path is None:
            assert result.path is None
        else:
            assert result.path.vertices == direct.path.vertices
            assert result.path.word == direct.path.word

    def test_batch_reports_short_circuits(self):
        graph = _chain_graph()
        engine = QueryEngine(graph)
        batch = engine.run_batch([
            ("a*b", 4, 0),
            ("a*ba*", 0, 3),
            ("a*b", 4, 1),
        ])
        flags = [result.stats.short_circuit for result in batch]
        assert flags == [True, False, True]
        assert batch.found_count == 1


class TestSnapshotReachParts:
    """The persisted condensation equals a fresh one (format v3)."""

    def test_thawed_parts_equal_compiled_parts(self, tmp_path):
        from repro.service.snapshot import load_snapshot, save_snapshot

        graph = _chain_graph()
        compiled = IndexedGraph(graph)
        path = str(tmp_path / "g.snap")
        save_snapshot(compiled, path)
        thawed = load_snapshot(path)
        fresh_comp, fresh_n, fresh_edges = compiled.reach_parts()
        thawed_comp, thawed_n, thawed_edges = thawed.reach_parts()
        assert list(thawed_comp) == list(fresh_comp)
        assert thawed_n == fresh_n
        assert thawed_edges == fresh_edges
        # And the thawed index answers like the fresh one.
        view = thawed.view()
        fresh_view = compiled.view()
        for source in range(6):
            for target in range(6):
                assert view.reachability().can_reach(
                    view.vertex_id(source), view.vertex_id(target)
                ) == fresh_view.reachability().can_reach(
                    fresh_view.vertex_id(source),
                    fresh_view.vertex_id(target),
                )


def test_index_reuse_is_memoised_per_view():
    graph = _chain_graph()
    view = graph.view()
    assert view.reachability() is view.reachability()
    graph.add_edge(5, "c", 4)
    new_view = graph.view()
    assert new_view is not view  # generation bumped
    # New view, new index over the merged SCC.
    index = new_view.reachability()
    assert index.comp_of[new_view.vertex_id(4)] == (
        index.comp_of[new_view.vertex_id(5)]
    )


def test_reachability_index_describe_shape():
    graph = _chain_graph()
    index = IndexedGraph(graph).reachability()
    info = index.describe()
    assert info["num_components"] == 4
    assert info["condensation_edges"] >= 2
    assert isinstance(ReachabilityIndex.from_view(graph.view()), ReachabilityIndex)
