"""Tests for the exponential exact RSPQ solver."""

import pytest

from repro.algorithms.exact import ExactSolver
from repro.errors import BudgetExceededError
from repro.graphs.dbgraph import DbGraph, Path
from repro.graphs.generators import grid_graph, labeled_cycle, labeled_path
from repro.languages import language


class TestCorrectness:
    def test_finds_shortest_not_just_any(self):
        # Two routes: direct aa (length 2) and detour aaa (length 3).
        graph = DbGraph.from_edges(
            [(0, "a", 1), (1, "a", 9),
             (0, "a", 2), (2, "a", 3), (3, "a", 9)]
        )
        path = ExactSolver("a*").shortest_simple_path(graph, 0, 9)
        assert len(path) == 2

    def test_any_simple_path_is_valid(self):
        graph = labeled_path("aba")
        lang = language("aba")
        path = ExactSolver(lang).any_simple_path(graph, 0, 3)
        assert path is not None
        assert path.is_simple()
        assert lang.accepts(path.word)

    def test_simplicity_is_enforced(self):
        # (aa)* on a 3-cycle: walks of even length exist (go around
        # twice = 6 edges) but no *simple* path from 0 to 1 has even
        # length.
        graph = labeled_cycle("aaa")
        lang = language("(aa)*")
        assert not ExactSolver(lang).exists(graph, 0, 1)
        # The walk semantics disagrees (goes around: length 4 reaches
        # vertex 1).
        from repro.algorithms.rpq import RpqSolver

        assert RpqSolver(lang).exists(graph, 0, 1)

    def test_source_equals_target(self):
        graph = labeled_cycle("ab")
        assert ExactSolver("eps").shortest_simple_path(
            graph, 0, 0
        ) == Path.single(0)
        assert ExactSolver("(ab)^+").shortest_simple_path(graph, 0, 0) is None

    def test_grid_hardness_instance(self):
        # Barrett et al.: grids are the hard family; small ones must
        # still be solved correctly.
        graph = grid_graph(3, 3)
        lang = language("(ab)*")  # alternate right/down
        path = ExactSolver(lang).shortest_simple_path(graph, (0, 0), (2, 2))
        assert path is not None
        assert path.word in ("abab", "baba"[0:4])  # right-down alternation


class TestBudget:
    def test_budget_exceeded_raises(self):
        # (aa)* on an odd cycle: even-length walks to vertex 1 exist (so
        # the liveness prune cannot cut the search), but no simple path
        # qualifies — the DFS must walk the cycle and exceed the budget.
        graph = labeled_cycle("a" * 9)
        solver = ExactSolver("(aa)*", budget=3)
        with pytest.raises(BudgetExceededError) as info:
            solver.shortest_simple_path(graph, 0, 1)
        assert info.value.steps > 3

    def test_no_budget_by_default(self):
        graph = labeled_path("ab")
        assert ExactSolver("ab").exists(graph, 0, 2)


class TestCounting:
    def test_count_simple_paths(self):
        # Diamond: two disjoint a-a routes 0->3.
        graph = DbGraph.from_edges(
            [(0, "a", 1), (1, "a", 3), (0, "a", 2), (2, "a", 3)]
        )
        assert ExactSolver("aa").count_simple_paths(graph, 0, 3) == 2

    def test_count_with_length_bound(self):
        graph = DbGraph.from_edges(
            [(0, "a", 1), (1, "a", 3), (0, "a", 2), (2, "a", 3),
             (0, "a", 3)]
        )
        solver = ExactSolver("a*")
        assert solver.count_simple_paths(graph, 0, 3, max_length=1) == 1
        assert solver.count_simple_paths(graph, 0, 3) == 3

    def test_count_source_equals_target(self):
        graph = labeled_cycle("aa")
        assert ExactSolver("a*").count_simple_paths(graph, 0, 0) == 1
        assert ExactSolver("a^+").count_simple_paths(graph, 0, 0) == 0


def _naive_goal_distances(solver, graph, target):
    """The seed's per-edge all-states scan, kept as the test oracle."""
    from collections import deque

    distances = {}
    queue = deque()
    for final in solver.dfa.accepting:
        node = (target, final)
        distances[node] = 0
        queue.append(node)
    while queue:
        vertex, state = queue.popleft()
        base = distances[(vertex, state)]
        for label, source in graph.in_edges(vertex):
            if label not in solver.dfa.alphabet:
                continue
            for state_before in solver.dfa.states():
                if solver.dfa.transition(state_before, label) != state:
                    continue
                node = (source, state_before)
                if node not in distances:
                    distances[node] = base + 1
                    queue.append(node)
    return distances


class TestGoalDistances:
    """The reverse transition index leaves the heuristic unchanged."""

    @pytest.mark.parametrize(
        "regex", ["a*", "a*ba*", "(aa)*", "a*(bb^+ + eps)c*", "ab + ba"]
    )
    def test_distances_match_naive_scan(self, regex):
        from repro.graphs.generators import random_labeled_graph
        from repro.graphs.view import as_graph_view

        solver = ExactSolver(regex)
        num_states = solver.dfa.num_states
        for seed in range(5):
            graph = random_labeled_graph(10, 30, "abc", seed=seed)
            view = as_graph_view(graph)
            for target in (0, 5, 9):
                packed = solver._goal_distances(
                    view, view.vertex_id(target)
                )
                unpacked = {
                    (view.vertex_at(node // num_states), node % num_states):
                        distance
                    for node, distance in packed.items()
                }
                assert unpacked == _naive_goal_distances(
                    solver, graph, target
                ), (regex, seed, target)

    def test_reverse_index_covers_all_transitions(self):
        solver = ExactSolver("a*(bb^+ + eps)c*")
        listed = sorted(
            (before, label, after)
            for (after, label), befores in (
                solver._reverse_transitions.items()
            )
            for before in befores
        )
        assert listed == sorted(solver.dfa.transitions())
