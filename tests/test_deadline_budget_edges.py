"""Deadline/budget edge cases: mid-batch isolation and upfront rejection.

Two families of guarantees:

* **Isolation** — a query that dies mid-batch on
  :class:`DeadlineExceededError` or an exhausted step budget poisons
  only itself: every other query in the batch completes with its
  normal answer, in input order, under every scheduler.  The heavy
  query is deterministic by construction: ``(aa)*`` from 0 to 1 on an
  odd 301-vertex a-cycle forces the exact solver through >256 context
  charges (a full deadline-check interval) with no simple witness,
  while the light queries finish in a handful of charges and never
  reach a deadline check.
* **Rejection** — a zero or negative budget, or a negative/expired
  engine deadline, can never admit any work, so it is rejected with a
  clear :class:`ValueError` at construction time instead of failing
  every query one by one.
"""

import pytest

from repro.engine import QueryEngine
from repro.execution import ExecutionContext
from repro.graphs.generators import labeled_cycle

#: Light companions for the heavy query: a finite language and a
#: one-hop tractable reach, both confined to the tiny p/q/r component
#: of the fixture graph — a handful of context charges, far below the
#: 256-charge deadline-check interval.
LIGHT_BEFORE = ("ab + ba", "p", "r")
HEAVY = ("(aa)*", 0, 1)
LIGHT_AFTER = ("a*", "p", "q")


@pytest.fixture
def cycle():
    # The 301-cycle carries the heavy query; the disjoint 3-vertex
    # component keeps the light queries' exploration tiny.
    graph = labeled_cycle("a" * 301)
    graph.add_edge("p", "a", "q")
    graph.add_edge("q", "b", "r")
    return graph


class TestMidBatchIsolation:
    @pytest.mark.parametrize("workers,mode", [
        (1, "thread"), (3, "thread"), (2, "process"),
    ])
    def test_budget_exhaustion_isolates_offender(self, cycle, workers, mode):
        engine = QueryEngine(cycle, exact_budget=50)
        batch = engine.run_batch(
            [LIGHT_BEFORE, HEAVY, LIGHT_AFTER], workers=workers, mode=mode
        )
        before, heavy, after = batch.results
        assert heavy.error is not None
        assert "budget" in heavy.error
        assert heavy.strategy == "error"
        assert before.error is None
        assert after.error is None
        assert after.found and after.path.word == "a"
        assert batch.error_count == 1

    @pytest.mark.parametrize("workers,mode", [
        (1, "thread"), (3, "thread"), (2, "process"),
    ])
    def test_deadline_isolates_offender(self, cycle, workers, mode):
        # 1ns deadline: any query charging past one deadline-check
        # interval (256 charges) dies; the light queries charge far
        # fewer times and never look at the clock.
        engine = QueryEngine(cycle, deadline_seconds=1e-9)
        batch = engine.run_batch(
            [LIGHT_BEFORE, HEAVY, LIGHT_AFTER], workers=workers, mode=mode
        )
        before, heavy, after = batch.results
        assert heavy.error is not None
        assert "deadline" in heavy.error
        assert before.error is None
        assert after.error is None
        assert batch.error_count == 1

    def test_per_batch_override_beats_engine_default(self, cycle):
        engine = QueryEngine(cycle)  # no default budget
        batch = engine.run_batch(
            [LIGHT_BEFORE, HEAVY, LIGHT_AFTER], budget=50
        )
        assert batch.results[1].error is not None
        assert "budget" in batch.results[1].error
        assert batch.error_count == 1
        # And without the override the same batch completes cleanly.
        assert engine.run_batch([LIGHT_BEFORE, LIGHT_AFTER]).error_count == 0

    def test_single_query_raises_instead_of_isolating(self, cycle):
        from repro.errors import BudgetExceededError, DeadlineExceededError

        engine = QueryEngine(cycle)
        with pytest.raises(BudgetExceededError):
            engine.query(*HEAVY, budget=50)
        with pytest.raises(DeadlineExceededError):
            engine.query(*HEAVY, deadline_seconds=1e-9)


class TestUpfrontRejection:
    @pytest.mark.parametrize("bad_budget", [0, -1, -100])
    def test_context_rejects_nonpositive_budget(self, bad_budget):
        with pytest.raises(ValueError, match="budget"):
            ExecutionContext(budget=bad_budget)

    def test_context_rejects_negative_deadline(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            ExecutionContext(deadline_seconds=-0.5)

    def test_context_keeps_zero_deadline_as_already_expired(self):
        # Legacy contract: 0.0 means "expired on arrival", used by
        # tests to make deadlines bite deterministically.
        ctx = ExecutionContext(deadline_seconds=0.0)
        assert ctx.deadline is not None

    @pytest.mark.parametrize("bad_budget", [0, -5])
    def test_engine_rejects_nonpositive_budget(self, cycle, bad_budget):
        with pytest.raises(ValueError, match="exact_budget"):
            QueryEngine(cycle, exact_budget=bad_budget)

    def test_engine_validates_before_compiling_the_graph(self):
        # A misconfigured engine must fail before paying for the
        # O(V+E) compile: with validation first, the bogus graph
        # object is never touched (no AttributeError).
        with pytest.raises(ValueError, match="exact_budget"):
            QueryEngine(object(), exact_budget=0)

    @pytest.mark.parametrize("bad_deadline", [0, 0.0, -1.0])
    def test_engine_rejects_nonpositive_default_deadline(
        self, cycle, bad_deadline
    ):
        with pytest.raises(ValueError, match="deadline_seconds"):
            QueryEngine(cycle, deadline_seconds=bad_deadline)

    def test_engine_rejects_bad_overrides_before_any_query_runs(self, cycle):
        engine = QueryEngine(cycle)
        with pytest.raises(ValueError, match="budget"):
            engine.run_batch([LIGHT_AFTER], budget=0)
        with pytest.raises(ValueError, match="deadline"):
            engine.run_batch([LIGHT_AFTER], deadline_seconds=-1.0)
        with pytest.raises(ValueError, match="budget"):
            engine.query(*LIGHT_AFTER, budget=-2)

    def test_cli_serve_rejects_nonpositive_budget(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs import io as graph_io
        from repro.graphs.dbgraph import DbGraph

        path = tmp_path / "g.txt"
        graph_io.dump(DbGraph.from_edges([("x", "a", "y")]), str(path))
        code = main([
            "serve", "--graph", "g=%s" % path, "--budget", "0",
        ])
        assert code == 2
        assert "budget" in capsys.readouterr().err
