"""Failure-injection and edge-case tests across modules."""

import pytest

from repro import DbGraph, language
from repro.core.nice_paths import TractableSolver
from repro.core.psitr import PsitrExpression
from repro.core.solver import RspqSolver
from repro.errors import (
    AutomatonError,
    GraphError,
    NotInTrCError,
    RegexSyntaxError,
    ReproError,
)
from repro.graphs.generators import labeled_path
from repro.languages import Language
from repro.languages.dfa import DFA


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [AutomatonError, GraphError, NotInTrCError, RegexSyntaxError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_not_in_trc_carries_witness_slot(self):
        err = NotInTrCError("nope", witness="w")
        assert err.witness == "w"


class TestDegenerateLanguages:
    def test_empty_language_solver(self):
        solver = RspqSolver(language("∅", alphabet={"a"}))
        graph = labeled_path("a")
        assert not solver.exists(graph, 0, 1)
        assert not solver.exists(graph, 0, 0)

    def test_epsilon_language_solver(self):
        solver = RspqSolver(language("eps", alphabet={"a"}))
        graph = labeled_path("a")
        assert solver.exists(graph, 0, 0)
        assert not solver.exists(graph, 0, 1)

    def test_single_letter_alphabet_queries(self):
        solver = TractableSolver(language("a*"))
        graph = DbGraph()
        graph.add_vertex("only")
        path = solver.shortest_simple_path(graph, "only", "only")
        assert path is not None and len(path) == 0

    def test_labels_outside_language_alphabet(self):
        # Graph edges labeled with symbols L has never seen.
        solver = TractableSolver(language("a*"))
        graph = DbGraph.from_edges([(0, "z", 1), (0, "a", 2)])
        assert solver.shortest_simple_path(graph, 0, 1) is None
        assert solver.shortest_simple_path(graph, 0, 2) is not None


class TestEmptyGraphs:
    def test_query_on_empty_graph(self):
        solver = RspqSolver(language("a*"))
        graph = DbGraph()
        with pytest.raises(GraphError):
            solver.shortest_simple_path(graph, 0, 1)

    def test_isolated_vertices(self):
        solver = RspqSolver(language("a*"))
        graph = DbGraph()
        graph.add_vertex(0)
        graph.add_vertex(1)
        assert not solver.exists(graph, 0, 1)


class TestMalformedInputs:
    def test_solver_rejects_bad_expression_type(self):
        with pytest.raises(TypeError):
            TractableSolver(language("a*"), expression="not an expression")

    def test_empty_psitr_expression_finds_nothing(self):
        solver = TractableSolver(
            language("∅", alphabet={"a"}),
            expression=PsitrExpression(()),
        )
        graph = labeled_path("a")
        assert solver.shortest_simple_path(graph, 0, 1) is None

    def test_dfa_with_dangling_accepting_state(self):
        with pytest.raises(AutomatonError):
            DFA(2, ["a"], {(0, "a"): 0, (1, "a"): 1}, 0, [5])

    def test_language_from_dfa_keeps_no_ast(self):
        dfa = language("a*").dfa
        lang = Language(dfa)
        assert lang.ast is None
        assert lang.accepts("aaa")


class TestSelfLoops:
    def test_self_loops_never_on_simple_paths(self):
        graph = DbGraph.from_edges([(0, "a", 0), (0, "a", 1)])
        solver = TractableSolver(language("a*"))
        path = solver.shortest_simple_path(graph, 0, 1)
        assert path.vertices == (0, 1)

    def test_self_loop_only_graph(self):
        graph = DbGraph.from_edges([(0, "a", 0)])
        graph.add_vertex(1)
        solver = RspqSolver(language("a^+"))
        assert not solver.exists(graph, 0, 1)
        assert not solver.exists(graph, 0, 0)
