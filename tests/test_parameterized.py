"""Tests for the parameterized-complexity entry points (Section 4.2)."""

import pytest

from repro.algorithms.parameterized import k_rspq, para_rspq_finite
from repro.errors import ReproError
from repro.graphs.generators import labeled_path, random_labeled_graph
from repro.languages import language


class TestKRspq:
    def test_within_bound(self):
        graph = labeled_path("aba")
        path = k_rspq("a*ba*", graph, 0, 3, k=3)
        assert path is not None
        assert len(path) <= 3

    def test_bound_too_small(self):
        graph = labeled_path("aba")
        assert k_rspq("a*ba*", graph, 0, 3, k=2, family="exhaustive") is None

    def test_exhaustive_family_exact(self):
        graph = random_labeled_graph(5, 12, "ab", seed=1)
        from repro.algorithms.exact import ExactSolver

        lang = language("a*ba*")
        truth_path = ExactSolver(lang).shortest_simple_path(graph, 0, 4)
        truth = truth_path is not None and len(truth_path) <= 3
        got = k_rspq(lang, graph, 0, 4, k=3, family="exhaustive")
        assert (got is not None) == truth


class TestParaRspqFinite:
    def test_finite_language(self):
        graph = labeled_path("ab")
        path = para_rspq_finite("ab + ba", graph, 0, 2)
        assert path is not None
        assert path.word == "ab"

    def test_infinite_language_rejected(self):
        graph = labeled_path("a")
        with pytest.raises(ReproError):
            para_rspq_finite("a*", graph, 0, 1)

    def test_word_length_bound_argument(self):
        # The Corollary-1 argument: words shorter than |Q_L|.
        lang = language("abc + ab")
        longest = max(len(word) for word in lang.words(10))
        assert longest < lang.num_states
