"""Property-based cross-validation of the solvers (hypothesis).

The single most important invariant in the repository: on arbitrary
graphs, the polynomial trC solver, the finite-language solver and the
dispatching solver all agree with the exponential exact solver — same
yes/no answer and same shortest length.

The differential engine suite extends the same idea one layer up, in
the spirit of configuration fuzzing: random graphs × random regexes
(the seeded generator from ``benchmarks/workloads.py``), asserting
that :class:`~repro.engine.QueryEngine` — serial, multi-threaded and
multi-process batches alike — returns results **path-for-path
identical** to direct per-query :class:`RspqSolver` evaluation.  Not
just the same yes/no answer: the same vertices, the same label word,
the same dispatched strategy.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from benchmarks.workloads import MIXED_LANGUAGES, random_regex

from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.solver import RspqSolver
from repro.engine import IndexedGraph, QueryEngine
from repro.graphs.dbgraph import DbGraph
from repro.languages import language


@st.composite
def small_graph_and_query(draw, alphabet):
    """A random db-graph (≤ 8 vertices) with a query pair."""
    num_vertices = draw(st.integers(2, 8))
    letters = sorted(alphabet)
    num_edges = draw(st.integers(1, 3 * num_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.sampled_from(letters),
                st.integers(0, num_vertices - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    graph = DbGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for source, label, target in edges:
        graph.add_edge(source, label, target)
    x = draw(st.integers(0, num_vertices - 1))
    y = draw(st.integers(0, num_vertices - 1))
    return graph, x, y


class TestTractableSolverAgreement:
    @given(small_graph_and_query("abc"))
    @settings(max_examples=60, deadline=None)
    def test_example1_language(self, instance):
        graph, x, y = instance
        lang = language("a*(bb^+ + eps)c*")
        mine = TractableSolver(lang).shortest_simple_path(graph, x, y)
        truth = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert (mine is None) == (truth is None)
        if mine is not None:
            assert len(mine) == len(truth)

    @given(small_graph_and_query("ab"))
    @settings(max_examples=60, deadline=None)
    def test_two_star_language(self, instance):
        graph, x, y = instance
        lang = language("a*(b + eps)a*b*")
        # Only run when the language is actually tractable (it is).
        mine = TractableSolver(lang).shortest_simple_path(graph, x, y)
        truth = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert (mine is None) == (truth is None)
        if mine is not None:
            assert len(mine) == len(truth)


class TestDispatcherAgreement:
    @given(
        small_graph_and_query("ab"),
        st.sampled_from(["(aa)*", "a*ba*", "ab + ba", "a*"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_strategies(self, instance, regex):
        graph, x, y = instance
        lang = language(regex)
        mine = RspqSolver(lang).shortest_simple_path(graph, x, y)
        truth = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert (mine is None) == (truth is None)
        if mine is not None:
            assert len(mine) == len(truth)


#: Seeds for the deterministic random-regex generator; hypothesis
#: shrinks over the seed, the regex reproduces from it alone.
REGEX_SEEDS = st.integers(0, 10 ** 6)


def _seeded_regex(seed, alphabet="ab"):
    return random_regex(random.Random(seed), alphabet=alphabet, max_depth=2)


def _assert_identical(engine_result, direct_result):
    """Engine answer == direct solver answer, path for path."""
    assert engine_result.error is None
    assert engine_result.found == direct_result.found
    assert engine_result.strategy == direct_result.strategy
    assert engine_result.decompose_failed == direct_result.decompose_failed
    if direct_result.path is None:
        assert engine_result.path is None
    else:
        assert engine_result.path.vertices == direct_result.path.vertices
        assert engine_result.path.word == direct_result.path.word


@st.composite
def differential_workload(draw):
    """A random graph plus a mixed curated/random query list."""
    graph, x, y = draw(small_graph_and_query("abc"))
    vertices = list(graph.vertices())
    languages = list(draw(st.lists(
        st.sampled_from(MIXED_LANGUAGES), min_size=2, max_size=5
    )))
    languages.append(_seeded_regex(draw(REGEX_SEEDS), alphabet="abc"))
    queries = []
    for index, regex in enumerate(languages):
        source = vertices[(x + index) % len(vertices)]
        target = vertices[(y + 2 * index) % len(vertices)]
        queries.append((regex, source, target))
    return graph, queries


class TestEngineDifferential:
    """QueryEngine ≡ direct RspqSolver on random graphs × regexes."""

    @given(small_graph_and_query("ab"), REGEX_SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_query_matches_direct_solver(self, instance, seed):
        graph, x, y = instance
        regex = _seeded_regex(seed)
        engine = QueryEngine(graph)
        result = engine.query(regex, x, y)
        direct = RspqSolver(regex).solve(graph, x, y)
        _assert_identical(result, direct)

    @given(differential_workload())
    @settings(max_examples=15, deadline=None)
    def test_run_batch_serial_and_threaded_match_direct(self, workload):
        graph, queries = workload
        engine = QueryEngine(graph)
        serial = engine.run_batch(queries)
        threaded = engine.run_batch(queries, workers=3, mode="thread")
        assert len(serial) == len(threaded) == len(queries)
        for (regex, source, target), one, other in zip(
            queries, serial, threaded
        ):
            direct = RspqSolver(regex).solve(graph, source, target)
            _assert_identical(one, direct)
            _assert_identical(other, direct)

    @given(differential_workload())
    @settings(max_examples=3, deadline=None)
    def test_run_batch_process_mode_matches_direct(self, workload):
        graph, queries = workload
        engine = QueryEngine(graph)
        batch = engine.run_batch(queries, workers=2, mode="process")
        assert len(batch) == len(queries)
        for (regex, source, target), result in zip(queries, batch):
            direct = RspqSolver(regex).solve(graph, source, target)
            _assert_identical(result, direct)


class TestCsrDbGraphDifferential:
    """One solver, two GraphView backends, bit-identical behavior.

    The ISSUE-4 acceptance suite: across random graphs × random
    regexes spanning all three trichotomy regimes, solving over the
    dict-backed ``DbGraph`` view and over the compiled CSR
    ``IndexedGraph`` view must agree *exactly* — found/path/strategy/
    decompose_failed, and even the per-query work counters, because
    both views iterate adjacency in the same canonical order.
    """

    @given(small_graph_and_query("abc"), REGEX_SEEDS)
    @settings(max_examples=50, deadline=None)
    def test_solver_cores_identical_on_both_views(self, instance, seed):
        from repro.execution import ExecutionContext

        graph, x, y = instance
        regex = _seeded_regex(seed, alphabet="abc")
        solver = RspqSolver(regex)
        indexed = IndexedGraph(graph)
        db_ctx = ExecutionContext()
        csr_ctx = ExecutionContext()
        db_result = solver.solve(graph, x, y, ctx=db_ctx)
        csr_result = solver.solve(indexed, x, y, ctx=csr_ctx)
        assert csr_result.found == db_result.found
        assert csr_result.path == db_result.path
        assert csr_result.strategy == db_result.strategy
        assert csr_result.decompose_failed == db_result.decompose_failed
        # Same expansion order on both backends — identical work, not
        # merely identical answers.
        assert solver.steps_in(csr_ctx) == solver.steps_in(db_ctx)

    @given(differential_workload())
    @settings(max_examples=10, deadline=None)
    def test_engine_and_batches_match_dbgraph_direct(self, workload):
        graph, queries = workload
        engine = QueryEngine(graph)  # CSR view end to end
        serial = engine.run_batch(queries)
        threaded = engine.run_batch(queries, workers=3, mode="thread")
        for (regex, source, target), one, other in zip(
            queries, serial, threaded
        ):
            direct = RspqSolver(regex).solve(graph, source, target)
            _assert_identical(one, direct)
            _assert_identical(other, direct)
            single = engine.query(regex, source, target)
            _assert_identical(single, direct)

    @given(differential_workload())
    @settings(max_examples=3, deadline=None)
    def test_process_batches_match_dbgraph_direct(self, workload):
        graph, queries = workload
        engine = QueryEngine(graph)
        batch = engine.run_batch(queries, workers=2, mode="process")
        for (regex, source, target), result in zip(queries, batch):
            direct = RspqSolver(regex).solve(graph, source, target)
            _assert_identical(result, direct)


class TestSolutionValidity:
    @given(small_graph_and_query("abc"))
    @settings(max_examples=40, deadline=None)
    def test_paths_are_simple_graph_paths_in_l(self, instance):
        graph, x, y = instance
        lang = language("a*(bb^+ + eps)c*")
        path = TractableSolver(lang).shortest_simple_path(graph, x, y)
        if path is None:
            return
        assert path.source == x
        assert path.target == y
        assert path.is_simple()
        assert graph.is_path(path)
        assert lang.accepts(path.word)
