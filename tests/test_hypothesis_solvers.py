"""Property-based cross-validation of the solvers (hypothesis).

The single most important invariant in the repository: on arbitrary
graphs, the polynomial trC solver, the finite-language solver and the
dispatching solver all agree with the exponential exact solver — same
yes/no answer and same shortest length.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import catalog
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.solver import RspqSolver
from repro.graphs.dbgraph import DbGraph
from repro.languages import language


@st.composite
def small_graph_and_query(draw, alphabet):
    """A random db-graph (≤ 8 vertices) with a query pair."""
    num_vertices = draw(st.integers(2, 8))
    letters = sorted(alphabet)
    num_edges = draw(st.integers(1, 3 * num_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.sampled_from(letters),
                st.integers(0, num_vertices - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    graph = DbGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for source, label, target in edges:
        graph.add_edge(source, label, target)
    x = draw(st.integers(0, num_vertices - 1))
    y = draw(st.integers(0, num_vertices - 1))
    return graph, x, y


class TestTractableSolverAgreement:
    @given(small_graph_and_query("abc"))
    @settings(max_examples=60, deadline=None)
    def test_example1_language(self, instance):
        graph, x, y = instance
        lang = language("a*(bb^+ + eps)c*")
        mine = TractableSolver(lang).shortest_simple_path(graph, x, y)
        truth = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert (mine is None) == (truth is None)
        if mine is not None:
            assert len(mine) == len(truth)

    @given(small_graph_and_query("ab"))
    @settings(max_examples=60, deadline=None)
    def test_two_star_language(self, instance):
        graph, x, y = instance
        lang = language("a*(b + eps)a*b*")
        # Only run when the language is actually tractable (it is).
        mine = TractableSolver(lang).shortest_simple_path(graph, x, y)
        truth = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert (mine is None) == (truth is None)
        if mine is not None:
            assert len(mine) == len(truth)


class TestDispatcherAgreement:
    @given(
        small_graph_and_query("ab"),
        st.sampled_from(["(aa)*", "a*ba*", "ab + ba", "a*"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_strategies(self, instance, regex):
        graph, x, y = instance
        lang = language(regex)
        mine = RspqSolver(lang).shortest_simple_path(graph, x, y)
        truth = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert (mine is None) == (truth is None)
        if mine is not None:
            assert len(mine) == len(truth)


class TestSolutionValidity:
    @given(small_graph_and_query("abc"))
    @settings(max_examples=40, deadline=None)
    def test_paths_are_simple_graph_paths_in_l(self, instance):
        graph, x, y = instance
        lang = language("a*(bb^+ + eps)c*")
        path = TractableSolver(lang).shortest_simple_path(graph, x, y)
        if path is None:
            return
        assert path.source == x
        assert path.target == y
        assert path.is_simple()
        assert graph.is_path(path)
        assert lang.accepts(path.word)
