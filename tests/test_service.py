"""The serving tier: registry semantics, HTTP endpoints, admission.

Server tests run against a real socket (:class:`ServiceThread` on an
ephemeral port) — the JSON codec, the HTTP framing and the executor
dispatch are all in the loop, exactly as in production.  Deadline and
budget behaviour is made deterministic by construction: the heavy
query walks an odd labeled cycle long enough that the exact solver
must charge >256 context steps (one full deadline-check interval),
while the light queries finish in a handful of charges and never even
look at the clock.
"""

import pytest

from repro.errors import ServiceError, ServiceOverloadedError
from repro.engine import IndexedGraph
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import labeled_cycle, random_labeled_graph
from repro.graphs import io as graph_io
from repro.service import (
    GraphRegistry,
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    save_snapshot,
)


@pytest.fixture
def graph():
    return random_labeled_graph(20, 60, "abc", seed=9)


@pytest.fixture
def registry(graph):
    reg = GraphRegistry()
    reg.register("main", graph)
    return reg


@pytest.fixture
def live(registry):
    service = QueryService(
        registry, ServiceConfig(workers=2, max_inflight=8)
    )
    with ServiceThread(service) as running:
        yield ServiceClient(port=running.port), registry


class TestGraphRegistry:
    def test_register_and_lookup(self, graph):
        registry = GraphRegistry()
        entry = registry.register("g", graph)
        assert registry.get("g") is entry
        assert "g" in registry
        assert len(registry) == 1
        assert registry.names() == ["g"]
        assert entry.stats.source == "compiled"

    def test_register_precompiled_indexed_graph(self, graph):
        registry = GraphRegistry()
        entry = registry.register("g", IndexedGraph(graph))
        assert entry.stats.source == "indexed"

    def test_duplicate_name_is_conflict(self, graph):
        registry = GraphRegistry()
        registry.register("g", graph)
        with pytest.raises(ServiceError) as info:
            registry.register("g", graph)
        assert info.value.status == 409

    def test_unknown_graph_is_404(self):
        registry = GraphRegistry()
        with pytest.raises(ServiceError) as info:
            registry.get("nope")
        assert info.value.status == 404

    def test_evict(self, graph):
        registry = GraphRegistry()
        registry.register("g", graph)
        registry.evict("g")
        assert "g" not in registry
        with pytest.raises(ServiceError):
            registry.evict("g")

    def test_capacity_bound(self, graph):
        registry = GraphRegistry(max_graphs=1)
        registry.register("one", graph)
        with pytest.raises(ServiceError, match="full"):
            registry.register("two", graph)
        registry.evict("one")
        registry.register("two", graph)

    def test_resolve_sole_graph_without_name(self, graph):
        registry = GraphRegistry()
        registry.register("only", graph)
        assert registry.resolve(None).name == "only"
        registry.register("second", graph)
        with pytest.raises(ServiceError, match="names no graph"):
            registry.resolve(None)

    def test_register_snapshot_warm_start(self, tmp_path, graph):
        path = str(tmp_path / "g.snap")
        save_snapshot(IndexedGraph(graph), path)
        registry = GraphRegistry()
        entry = registry.register_snapshot("warm", path)
        assert entry.stats.source == "snapshot"
        assert entry.engine.graph.num_edges == graph.num_edges

    def test_describe_carries_shape_and_counters(self, graph):
        registry = GraphRegistry()
        registry.register("g", graph)
        (described,) = registry.describe()
        assert described["name"] == "g"
        assert described["num_vertices"] == graph.num_vertices
        assert described["queries"] == 0
        assert described["plan_cache"]["compiles"] == 0


class TestHttpEndpoints:
    def test_healthz(self, live):
        client, _registry = live
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["graphs"] == 1

    def test_query_roundtrip_matches_direct(self, live, graph):
        client, _registry = live
        from repro.core.solver import solve_rspq

        record = client.query("a*(bb^+ + eps)c*", 0, 5, graph="main")
        direct = solve_rspq("a*(bb^+ + eps)c*", graph, 0, 5)
        assert record["found"] == direct.found
        assert record["strategy"] == direct.strategy
        if direct.path is not None:
            assert record["path"] == list(direct.path.vertices)
            assert record["word"] == direct.path.word

    def test_query_without_graph_name_uses_sole_graph(self, live):
        client, _registry = live
        assert client.query("a*", 0, 1)["language"] == "a*"

    def test_string_vertex_coercion(self, live):
        # JSON-side "0" resolves onto the int vertex 0.
        client, _registry = live
        record = client.query("a*", "0", "1")
        assert record["source"] == 0

    def test_unknown_graph_404(self, live):
        client, _registry = live
        with pytest.raises(ServiceError) as info:
            client.query("a*", 0, 1, graph="ghost")
        assert info.value.status == 404

    def test_unknown_vertex_400(self, live):
        client, _registry = live
        with pytest.raises(ServiceError) as info:
            client.query("a*", 999, 1)
        assert info.value.status == 400
        assert "unknown vertex" in str(info.value)

    def test_bad_regex_400(self, live):
        client, _registry = live
        with pytest.raises(ServiceError) as info:
            client.query("a**((", 0, 1)
        assert info.value.status == 400

    def test_batch_matches_serial_order(self, live, graph):
        client, _registry = live
        queries = [("a*", 0, 1), ("ab + ba", 2, 3), ("a*ba*", 4, 5)]
        response = client.batch(queries, workers=2)
        assert [r["language"] for r in response["results"]] == [
            "a*", "ab + ba", "a*ba*"
        ]
        assert response["workers"] == 2
        assert response["error_count"] == 0

    def test_batch_isolates_per_query_errors(self, live):
        client, _registry = live
        response = client.batch([("a*", 0, 1), ("a*", 999, 1)])
        results = response["results"]
        assert results[0]["error"] is None
        assert "unknown vertex" in results[1]["error"]
        assert response["error_count"] == 1

    def test_classify_endpoint(self, live):
        client, _registry = live
        record = client.classify("a*(bb^+ + eps)c*")
        assert record["in_trc"] is True
        assert record["complexity_class"] == "NL-complete"
        assert record["strategy"] == "trc-nice-path"

    def test_stats_count_served_queries(self, live):
        client, _registry = live
        client.query("a*", 0, 1)
        client.batch([("a*", 0, 1), ("c*", 2, 3)])
        stats = client.stats()
        (graph_stats,) = stats["graphs"]
        assert graph_stats["queries"] == 3
        assert graph_stats["batches"] == 1
        # the /query and /batch requests (the in-flight /stats request
        # is only counted once its own response has been written)
        assert stats["service"]["requests"] >= 2

    def test_register_and_evict_over_http(self, live):
        client, _registry = live
        text = graph_io.dumps(
            DbGraph.from_edges([("x", "a", "y"), ("y", "b", "z")])
        )
        client.register_graph("tiny", text)
        record = client.query("ab", "x", "z", graph="tiny")
        assert record["found"] is True
        assert record["word"] == "ab"
        client.evict_graph("tiny")
        with pytest.raises(ServiceError) as info:
            client.query("ab", "x", "z", graph="tiny")
        assert info.value.status == 404

    def test_duplicate_http_registration_conflicts(self, live):
        client, _registry = live
        text = graph_io.dumps(DbGraph.from_edges([("x", "a", "y")]))
        client.register_graph("dup", text)
        with pytest.raises(ServiceError) as info:
            client.register_graph("dup", text)
        assert info.value.status == 409

    def test_unknown_endpoint_404_and_wrong_method_405(self, live):
        client, _registry = live
        status, _body = client.request("GET", "/no-such")
        assert status == 404
        status, _body = client.request("DELETE", "/query")
        assert status == 405

    def test_malformed_graph_text_is_client_error(self, live):
        client, _registry = live
        with pytest.raises(ServiceError) as info:
            client.register_graph("broken", "this is not a graph line")
        assert info.value.status == 400
        assert "broken" not in client.stats()["graphs"][0]["name"]

    def test_graph_name_with_spaces_can_be_evicted(self, live):
        client, _registry = live
        text = graph_io.dumps(DbGraph.from_edges([("x", "a", "y")]))
        client.register_graph("two words", text)
        client.evict_graph("two words")
        names = [g["name"] for g in client.graphs()]
        assert "two words" not in names

    def test_failed_single_query_counts_in_graph_stats(self, live):
        client, _registry = live
        with pytest.raises(ServiceError):
            client.query("a*", 999, 1)  # unknown vertex
        (graph_stats,) = client.stats()["graphs"]
        assert graph_stats["queries"] == 1
        assert graph_stats["errors"] == 1

    def test_service_thread_stop_is_safe_after_failed_start(self, registry):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            runner = ServiceThread(
                QueryService(registry, ServiceConfig()),
                port=port,
            )
            with pytest.raises(OSError):
                runner.start()
            runner.stop()  # must be a clean no-op, not a RuntimeError
        finally:
            blocker.close()
        # and stopping a never-started thread is equally safe
        ServiceThread(QueryService(registry, ServiceConfig())).stop()


class TestAdmissionControl:
    def test_batch_larger_than_capacity_rejected_immediately(self, registry):
        service = QueryService(
            registry, ServiceConfig(workers=2, max_inflight=2)
        )
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            with pytest.raises(ServiceOverloadedError):
                client.batch([("a*", 0, 1)] * 3)
            # Within capacity still works, and the slots were released.
            assert client.batch([("a*", 0, 1)] * 2)["error_count"] == 0
            assert client.stats()["service"]["rejected"] == 1
            assert client.stats()["service"]["inflight"] == 0

    def test_unbounded_header_section_rejected(self, live):
        import socket

        client, _registry = live
        with socket.create_connection(
            (client.host, client.port), timeout=10
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n")
            # One oversized header line trips the byte bound.
            sock.sendall(b"x-padding: " + b"a" * 20000 + b"\r\n\r\n")
            chunks = []
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
            response = b"".join(chunks).decode("latin-1")
        assert "400" in response.split("\r\n")[0]
        assert "header section" in response

    def test_rejection_is_429(self, registry):
        service = QueryService(
            registry, ServiceConfig(workers=1, max_inflight=1)
        )
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            status, body = client.request(
                "POST",
                "/batch",
                {"queries": [["a*", 0, 1], ["a*", 1, 2]]},
            )
            assert status == 429
            assert "overloaded" in body["error"]


class TestDeadlinesAndBudgets:
    """Per-request limits land on the query's ExecutionContext."""

    @pytest.fixture
    def cycle_registry(self):
        # Odd a-cycle: (aa)* from 0 to 1 has no simple witness, but
        # walks of even length exist, so the exact solver explores the
        # whole 301-step chain — deterministically >256 context charges
        # (one full deadline-check interval) and >50 budget steps.
        registry = GraphRegistry()
        registry.register("cycle", labeled_cycle("a" * 301))
        return registry

    def test_nonpositive_deadline_rejected_400(self, live):
        client, _registry = live
        for bad in (0, -1.5):
            with pytest.raises(ServiceError) as info:
                client.query("a*", 0, 1, deadline_seconds=bad)
            assert info.value.status == 400
            assert "deadline" in str(info.value)

    def test_nonpositive_budget_rejected_400(self, live):
        client, _registry = live
        for bad in (0, -3):
            with pytest.raises(ServiceError) as info:
                client.query("a*", 0, 1, budget=bad)
            assert info.value.status == 400
            assert "budget" in str(info.value)

    def test_deadline_exceeded_maps_to_504(self, cycle_registry):
        service = QueryService(cycle_registry, ServiceConfig(workers=1))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            with pytest.raises(ServiceError) as info:
                client.query("(aa)*", 0, 1, deadline_seconds=1e-9)
            assert info.value.status == 504

    def test_budget_exhausted_maps_to_422(self, cycle_registry):
        service = QueryService(cycle_registry, ServiceConfig(workers=1))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            with pytest.raises(ServiceError) as info:
                client.query("(aa)*", 0, 1, budget=50)
            assert info.value.status == 422

    def test_generous_limits_answer_normally(self, cycle_registry):
        service = QueryService(cycle_registry, ServiceConfig(workers=1))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            record = client.query(
                "a*", 0, 5, deadline_seconds=60.0, budget=10 ** 9
            )
            assert record["found"] is True
            assert record["word"] == "aaaaa"


class TestPortfolioOverHttp:
    """The /query and /batch portfolio knobs and confidence fields."""

    @pytest.fixture
    def portfolio_live(self):
        # The probabilistic-negative gadget from tests/test_portfolio:
        # an accepting (aa)* walk 0-1-2-3-1-2-4 exists but no simple
        # path does, and padding vertices keep the walk under the cap.
        graph = DbGraph()
        for u, l, v in [
            (0, "a", 1), (1, "a", 2), (2, "a", 3), (3, "a", 1),
            (2, "a", 4),
        ]:
            graph.add_edge(u, l, v)
        graph.add_vertex(5)
        graph.add_vertex(6)
        registry = GraphRegistry(portfolio=True)
        registry.register("gadget", graph)
        service = QueryService(registry, ServiceConfig(workers=2))
        with ServiceThread(service) as running:
            yield ServiceClient(port=running.port), registry

    def test_probabilistic_negative_over_the_wire(self, portfolio_live):
        client, _registry = portfolio_live
        record = client.query("(aa)*", 0, 4)
        assert record["found"] is False
        assert record["strategy"].startswith("portfolio:")
        assert record["confidence"] == "probabilistic"
        assert 0.0 < record["failure_bound"] < 1.0

    def test_per_request_opt_out(self, portfolio_live):
        client, _registry = portfolio_live
        record = client.query("(aa)*", 0, 4, portfolio=False)
        assert record["strategy"] == "exact-backtracking"
        assert record["confidence"] == "certified"
        assert record["failure_bound"] is None

    def test_bounded_query_knob(self, portfolio_live):
        client, _registry = portfolio_live
        record = client.query("(aa)*", 0, 2, max_path_edges=1)
        assert record["found"] is False
        assert record["confidence"] == "certified"

    def test_batch_carries_portfolio_overrides(self, portfolio_live):
        client, _registry = portfolio_live
        response = client.batch(
            [("(aa)*", 0, 4), ("(aa)*", 0, 2)], portfolio=True
        )
        by_target = {
            record["target"]: record for record in response["results"]
        }
        assert by_target[4]["found"] is False
        assert by_target[2]["found"] is True
        assert by_target[2]["confidence"] == "certified"

    def test_invalid_knobs_rejected_400(self, portfolio_live):
        client, _registry = portfolio_live
        for payload in (
            {"language": "a*", "source": 0, "target": 1,
             "max_path_edges": -1},
            {"language": "a*", "source": 0, "target": 1,
             "max_path_edges": 1.5},
            {"language": "a*", "source": 0, "target": 1,
             "portfolio": "yes"},
        ):
            status, _body = client.request("POST", "/query", payload)
            assert status == 400, payload

    def test_stats_report_the_ladder_config(self, portfolio_live):
        client, _registry = portfolio_live
        graphs = client.stats()["graphs"]
        assert graphs[0]["portfolio"] == {
            "enabled": True,
            "failure_probability": 1e-3,
            "seed": 0,
        }


class TestCsrDbGraphDifferentialOverHttp:
    """The served (CSR-backed) answers ≡ direct DbGraph evaluation.

    The HTTP leg of the ISSUE-4 differential suite: random regexes
    spanning all three trichotomy regimes are answered by a live
    server — whose engine walks the compiled CSR view — and replayed
    through ``solve_rspq`` on the raw ``DbGraph``, path for path.
    """

    def _random_queries(self, graph, count=24, seed=123):
        import random

        from benchmarks.workloads import MIXED_LANGUAGES, random_regexes

        rng = random.Random(seed)
        vertices = list(graph.vertices())
        languages = list(MIXED_LANGUAGES) + random_regexes(
            8, seed=seed, alphabet="abc", max_depth=2
        )
        return [
            (
                languages[index % len(languages)],
                rng.choice(vertices),
                rng.choice(vertices),
            )
            for index in range(count)
        ]

    def test_served_queries_match_dbgraph_direct(self, live, graph):
        from repro.service.client import run_load, verify_against_direct

        queries = self._random_queries(graph)
        client, _registry = live
        records = run_load(
            client, queries, graph="main", batch_size=8, workers=2
        )
        assert verify_against_direct(graph, queries, records) == []

    def test_snapshot_served_queries_match_dbgraph_direct(
        self, tmp_path, graph
    ):
        from repro.service.client import run_load, verify_against_direct

        snap = str(tmp_path / "main.snap")
        save_snapshot(IndexedGraph(graph), snap)
        registry = GraphRegistry()
        registry.register_snapshot("thawed", snap)
        service = QueryService(registry, ServiceConfig(workers=2))
        queries = self._random_queries(graph, seed=321)
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            records = run_load(
                client, queries, graph="thawed", batch_size=8, workers=2
            )
            stats = client.stats()
        assert verify_against_direct(graph, queries, records) == []
        (graph_stats,) = stats["graphs"]
        assert graph_stats["graph_view"] == "csr"
        assert graph_stats["source"] == "snapshot"
