"""Chaos suite: injected faults versus the resilience invariants.

Every end-to-end test here drives the *production* code paths — real
pre-forked worker processes, the real snapshot parser, real HTTP over
a socket — with deterministic faults from
:mod:`repro.service.faults`.  The invariants under test:

* **no wrong answer, ever** — whatever crashes, every 200 response
  matches the direct :func:`solve_rspq` answer path-for-path;
* **bounded recovery** — after the fault source stops, the service
  returns to ``/healthz`` ``ok`` within the breaker/ladder bounds;
* **honest refusals** — shed or refused work carries a structured
  error body (``error_type``, ``retry_after``) and a ``Retry-After``
  header, never a silent hang or a stack trace.

The unit half drives the breaker/shedder/ladder state machines with a
fake clock, so every transition is exercised without sleeping.
"""

import math
import os
import socket
import time

import pytest

from repro.engine import IndexedGraph
from repro.errors import ServiceError, ServiceOverloadedError, SnapshotError
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import labeled_cycle, random_labeled_graph
from repro.graphs import io as graph_io
from repro.service import (
    BreakerConfig,
    CircuitBreaker,
    DegradationLadder,
    FaultPlan,
    GraphRegistry,
    LadderConfig,
    LoadShedder,
    QueryService,
    RESULT_FIELDS,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    ShedConfig,
    save_snapshot,
    verify_against_direct,
)
from repro.service import faults
from repro.service.snapshot import load_snapshot

#: Mixed found/not-found workload on the seed-9 random graph.
QUERIES = [
    ("a*", 0, 1),
    ("ab*", 0, 5),
    ("(ab)*", 2, 11),
    ("a(b|c)*", 3, 19),
    ("c*", 7, 7),
]

#: Fast pool knobs so crash/respawn cycles take milliseconds, not the
#: production-friendly default backoffs.
FAST_POOL = {"respawn_backoff": 0.01, "grace_seconds": 0.2}


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """A chaos test must never leak its fault plan into the next."""
    yield
    faults.uninstall()


@pytest.fixture
def graph():
    return random_labeled_graph(20, 60, "abc", seed=9)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# FaultPlan mechanics.
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan(
            seed=7,
            worker_crash_at=(2, 5),
            worker_hang_at=(3,),
            hang_seconds=1.5,
            snapshot_truncate_at=(1,),
            spool_errors=2,
            deadline_skew_seconds=-0.5,
        )
        clone = FaultPlan.from_spec(plan.spec())
        assert clone.spec() == plan.spec()

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec"):
            FaultPlan.from_spec({"worker_crash_att": [1]})

    def test_overlapping_worker_ordinals_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FaultPlan(worker_crash_at=(2,), worker_hang_at=(2,))

    def test_install_returns_previous_and_uninstall_resets(self):
        first = FaultPlan(worker_crash_at=(1,))
        assert faults.install(first) is None
        assert faults.active() is first
        second = FaultPlan(spool_errors=1)
        assert faults.install(second) is first
        faults.uninstall()
        assert faults.active() is None
        assert faults.active_spec() is None

    def test_hooks_are_inert_without_a_plan(self):
        assert faults.worker_fault() is None
        assert faults.worker_stall_seconds("hang") == 0.0
        assert faults.mutate_snapshot_bytes(b"abc") is None
        faults.spool_fault("/tmp/x")  # must not raise
        assert faults.skewed_deadline(2.0) == 2.0

    def test_install_from_env(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        assert faults.install_from_env() is None
        monkeypatch.setenv(faults.FAULTS_ENV, '{"worker_crash_at": [3]}')
        plan = faults.install_from_env()
        assert plan is not None and plan.worker_crash_at == {3}
        assert faults.active() is plan

    def test_install_from_env_rejects_malformed_spec(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            faults.install_from_env()
        monkeypatch.setenv(faults.FAULTS_ENV, '["crash"]')
        with pytest.raises(ValueError, match="JSON object"):
            faults.install_from_env()
        monkeypatch.setenv(faults.FAULTS_ENV, '{"nope": 1}')
        with pytest.raises(ValueError, match="unknown fault spec"):
            faults.install_from_env()

    def test_worker_action_schedule_is_per_ordinal(self):
        plan = FaultPlan(worker_crash_at=(2,), worker_slow_at=(4,))
        faults.install(plan)
        assert [faults.worker_fault() for _ in range(5)] == [
            None, "crash", None, "slow", None,
        ]

    def test_bitflip_is_seeded_and_single_bit(self):
        plan = FaultPlan(seed=11)
        data = bytes(range(64))
        flipped = plan.mutate("bitflip", data)
        assert flipped == FaultPlan(seed=11).mutate("bitflip", data)
        assert flipped != FaultPlan(seed=12).mutate("bitflip", data)
        diff = [a ^ b for a, b in zip(data, flipped)]
        changed = [d for d in diff if d]
        assert len(changed) == 1
        assert bin(changed[0]).count("1") == 1

    def test_truncate_halves_the_payload(self):
        plan = FaultPlan()
        assert plan.mutate("truncate", bytes(100)) == bytes(50)


# ---------------------------------------------------------------------------
# CircuitBreaker state machine (fake clock, no sleeping).
# ---------------------------------------------------------------------------


def make_breaker(clock, threshold=3, cooldown=1.0, jitter=0.0, **kw):
    config = BreakerConfig(
        failure_threshold=threshold,
        cooldown_seconds=cooldown,
        jitter=jitter,
        **kw,
    )
    return CircuitBreaker(config, clock=clock)


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.admit() is None

    def test_opens_at_threshold_with_retry_hint(self):
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=3, cooldown=2.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        retry_in = breaker.admit()
        assert retry_in is not None and 0 < retry_in <= 2.0

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        assert breaker.admit() is not None  # still cooling down
        clock.advance(1.5)
        assert breaker.state == "half-open"
        assert breaker.admit() is None  # the single probe
        assert breaker.admit() is not None  # second caller refused

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.admit() is None
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.describe()["opens"] == 0  # recovery resets

    def test_probe_failure_reopens_with_longer_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=1, cooldown=1.0,
                               max_cooldown_seconds=30.0)
        breaker.record_failure()
        first = breaker.describe()["cooldown_seconds"]
        clock.advance(1.5)
        assert breaker.admit() is None
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        second = breaker.describe()["cooldown_seconds"]
        assert second == pytest.approx(2 * first)

    def test_cooldown_is_capped(self):
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=1, cooldown=1.0,
                               max_cooldown_seconds=4.0)
        breaker.record_failure()
        for _ in range(5):
            clock.advance(100.0)
            assert breaker.admit() is None
            breaker.record_failure()
        assert breaker.describe()["cooldown_seconds"] <= 4.0

    def test_released_probe_slot_is_reusable(self):
        # A probe request that resolves nothing (shed downstream, bad
        # input, deadline) hands its slot back; the next request can
        # probe instead of the circuit wedging half-open forever.
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.admit() is None  # the probe
        breaker.release_probe()
        assert breaker.admit() is None  # slot returned: probe again
        breaker.record_success()
        assert breaker.state == "closed"

    def test_release_probe_is_noop_when_resolved_or_closed(self):
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=1, cooldown=1.0)
        breaker.release_probe()  # closed: nothing to release
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.release_probe()  # open, no probe outstanding
        assert breaker.admit() is not None  # still cooling down

    def test_leaked_probe_times_out_after_a_cooldown(self):
        # Belt-and-braces for a handler that dies without releasing:
        # a probe outstanding past a full cooldown is presumed lost
        # and the slot re-opens by itself.
        clock = FakeClock()
        breaker = make_breaker(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.admit() is None  # the probe — never resolved
        assert breaker.admit() is not None  # slot held meanwhile
        clock.advance(1.5)
        assert breaker.admit() is None  # stale probe re-admitted
        breaker.record_success()
        assert breaker.state == "closed"

    def test_jitter_is_seeded(self):
        config = BreakerConfig(failure_threshold=1, jitter=0.3)
        clocks = FakeClock(), FakeClock()
        one = CircuitBreaker(config, seed=5, clock=clocks[0])
        two = CircuitBreaker(config, seed=5, clock=clocks[1])
        one.record_failure()
        two.record_failure()
        assert one.describe()["cooldown_seconds"] == (
            two.describe()["cooldown_seconds"]
        )


# ---------------------------------------------------------------------------
# LoadShedder admission policies.
# ---------------------------------------------------------------------------


class TestLoadShedder:
    def test_hard_cap_sheds_with_retry_hint(self):
        shedder = LoadShedder(ShedConfig(max_inflight=2))
        shedder.admit(2)
        with pytest.raises(ServiceOverloadedError) as info:
            shedder.admit(1)
        assert info.value.error_type == "overloaded"
        assert info.value.retry_after > 0
        assert shedder.shed_total == 1

    def test_flat_policy_ignores_deadlines(self):
        shedder = LoadShedder(
            ShedConfig(policy="flat", max_inflight=8)
        )
        shedder.observe(1.0, 1)  # 1s per query on the EWMA
        shedder.admit(4)
        # Deadline-doomed by any estimate, but flat policy admits it.
        shedder.admit(1, deadline_seconds=1e-6)

    def test_doomed_deadline_is_shed_upfront(self):
        shedder = LoadShedder(ShedConfig(max_inflight=8))
        shedder.observe(1.0, 1)
        shedder.admit(4)  # estimated wait now ~4s
        with pytest.raises(ServiceOverloadedError) as info:
            shedder.admit(1, deadline_seconds=0.5)
        assert info.value.error_type == "doomed_deadline"
        # A deadline that survives the queue is still admitted.
        shedder.admit(1, deadline_seconds=60.0)

    def test_soft_band_sheds_cheap_work_first(self):
        shedder = LoadShedder(
            ShedConfig(max_inflight=10, soft_inflight=2)
        )
        shedder.admit(2)
        with pytest.raises(ServiceOverloadedError) as info:
            shedder.admit(1)  # cheap single query: shed
        assert info.value.error_type == "pressure_shed"
        shedder.admit(5)  # expensive batch: still admitted
        assert shedder.inflight == 7

    def test_estimated_wait_divides_by_worker_lanes(self):
        # 4 in flight over 4 workers drain in ~1 per-query interval,
        # not 4: a 2s deadline survives the queue and must be
        # admitted; a serial estimate would shed it as doomed.
        shedder = LoadShedder(ShedConfig(max_inflight=8, workers=4))
        shedder.observe(1.0, 1)
        shedder.admit(4)
        shedder.admit(1, deadline_seconds=2.0)
        with pytest.raises(ServiceOverloadedError) as info:
            shedder.admit(1, deadline_seconds=0.5)  # genuinely doomed
        assert info.value.error_type == "doomed_deadline"
        # Retry-After hints scale with the drain rate too.
        assert info.value.retry_after == pytest.approx(5 / 4)

    def test_release_floors_at_zero(self):
        shedder = LoadShedder(ShedConfig(max_inflight=4))
        shedder.admit(2)
        shedder.release(5)
        assert shedder.inflight == 0

    def test_describe_counts_every_shed_kind(self):
        shedder = LoadShedder(
            ShedConfig(max_inflight=3, soft_inflight=1)
        )
        shedder.observe(1.0, 1)
        shedder.admit(2)
        for _ in range(2):
            with pytest.raises(ServiceOverloadedError):
                shedder.admit(1)  # pressure band
        with pytest.raises(ServiceOverloadedError):
            shedder.admit(2)  # hard cap
        with pytest.raises(ServiceOverloadedError):
            shedder.admit(1, deadline_seconds=1e-6)  # doomed
        described = shedder.describe()
        assert described["shed_soft"] == 2
        assert described["shed_hard"] == 1
        assert described["shed_doomed"] == 1
        assert shedder.shed_total == 4


# ---------------------------------------------------------------------------
# DegradationLadder transitions (fake clock).
# ---------------------------------------------------------------------------


def make_ladder(clock, crash_threshold=2, shed_threshold=3,
                window_seconds=10.0, recovery_seconds=1.0):
    return DegradationLadder(
        LadderConfig(
            crash_threshold=crash_threshold,
            shed_threshold=shed_threshold,
            window_seconds=window_seconds,
            recovery_seconds=recovery_seconds,
        ),
        clock=clock,
    )


class TestDegradationLadder:
    def test_crash_threshold_climbs_one_rung(self):
        clock = FakeClock()
        ladder = make_ladder(clock)
        ladder.record_crash()
        assert ladder.level == 0
        ladder.record_crash()
        assert ladder.level == 1
        assert ladder.level_name == "portfolio"

    def test_window_prunes_stale_events(self):
        clock = FakeClock()
        ladder = make_ladder(clock, crash_threshold=2, window_seconds=5.0)
        ladder.record_crash()
        clock.advance(6.0)
        ladder.record_crash()  # the first crash has aged out
        assert ladder.level == 0

    def test_breaker_open_always_climbs_and_caps_at_reach_only(self):
        clock = FakeClock()
        ladder = make_ladder(clock)
        for _ in range(4):
            ladder.record_breaker_open()
        assert ladder.level == 2
        assert ladder.level_name == "reach-only"

    def test_recovery_descends_one_rung_per_quiet_period(self):
        clock = FakeClock()
        ladder = make_ladder(clock, recovery_seconds=1.0)
        ladder.record_breaker_open()
        ladder.record_breaker_open()
        assert ladder.level == 2
        ladder.record_ok()  # no quiet time yet
        assert ladder.level == 2
        clock.advance(1.5)
        ladder.record_ok()
        assert ladder.level == 1
        ladder.record_ok()  # same quiet period: no double descent
        assert ladder.level == 1
        clock.advance(1.5)
        ladder.record_ok()
        assert ladder.level == 0
        assert ladder.describe()["recoveries"] == 2

    def test_shed_threshold_climbs(self):
        clock = FakeClock()
        ladder = make_ladder(clock, shed_threshold=3)
        for _ in range(3):
            ladder.record_shed()
        assert ladder.level == 1

    def test_force_pins_and_releases(self):
        clock = FakeClock()
        ladder = make_ladder(clock)
        ladder.force(2)
        assert ladder.level == 2
        clock.advance(100.0)
        ladder.record_ok()
        assert ladder.level == 2  # pinned
        ladder.force(None)
        with pytest.raises(ValueError):
            ladder.force(3)


# ---------------------------------------------------------------------------
# Snapshot corruption: detection and recovery.
# ---------------------------------------------------------------------------


class TestSnapshotCorruption:
    @pytest.fixture
    def snap_path(self, tmp_path, graph):
        path = str(tmp_path / "g.snap")
        save_snapshot(IndexedGraph(graph), path)
        return path

    def test_truncated_read_fails_cleanly_then_recovers(self, snap_path):
        faults.install(FaultPlan(snapshot_truncate_at=(1,)))
        with pytest.raises(SnapshotError):
            load_snapshot(snap_path)
        # The file itself was never touched: the next read (ordinal 2,
        # no scheduled fault) parses the pristine bytes.
        loaded = load_snapshot(snap_path)
        assert loaded.num_vertices == 20

    def test_bitflip_is_caught_by_the_checksum(self, snap_path):
        faults.install(FaultPlan(seed=3, snapshot_bitflip_at=(1,)))
        with pytest.raises(SnapshotError):
            load_snapshot(snap_path)
        faults.uninstall()
        assert load_snapshot(snap_path).num_vertices == 20


# ---------------------------------------------------------------------------
# Worker-process chaos over real HTTP.
# ---------------------------------------------------------------------------


def pool_registry(graph, **pool_extra):
    kwargs = dict(FAST_POOL)
    kwargs.update(pool_extra)
    registry = GraphRegistry(worker_processes=1, pool_kwargs=kwargs)
    registry.register("main", graph)
    return registry


class TestWorkerChaos:
    def test_crash_recovery_never_serves_a_wrong_answer(self, graph):
        # Every respawned worker crashes serving its 2nd request, so
        # the pool is forced through repeated crash->respawn->retry
        # cycles while the client sees only correct answers.
        faults.install(FaultPlan(worker_crash_at=(2,)))
        registry = pool_registry(graph)
        service = QueryService(registry, ServiceConfig(workers=2))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port, max_retries=2)
            records = [
                client.query(lang, source, target)
                for lang, source, target in QUERIES
            ]
        assert verify_against_direct(graph, QUERIES, records) == []
        assert all(record["error"] is None for record in records)

    def test_unrecovered_crash_is_structured_503(self, graph):
        # Crashing on every worker's 1st request exhausts the retry
        # budget: the server must answer 503 + Retry-After with a
        # machine-readable error type, and count the crash everywhere.
        faults.install(FaultPlan(worker_crash_at=(1,)))
        registry = pool_registry(graph)
        service = QueryService(registry, ServiceConfig(workers=2))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            with pytest.raises(ServiceError) as info:
                client.query("a*", 0, 1)
            assert info.value.status == 503
            assert info.value.error_type == "worker_crash"
            assert info.value.retry_after == pytest.approx(1.0)
            stats = client.stats()
        assert stats["service"]["worker_crashes"] == 1
        (described,) = stats["graphs"]
        assert described["worker_crashes"] == 1

    def test_hang_with_deadline_maps_to_504(self, graph):
        faults.install(
            FaultPlan(worker_hang_at=(1,), hang_seconds=30.0)
        )
        registry = pool_registry(graph)
        service = QueryService(registry, ServiceConfig(workers=2))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            start = time.monotonic()
            with pytest.raises(ServiceError) as info:
                client.query("a*", 0, 1, deadline_seconds=0.2)
            elapsed = time.monotonic() - start
            assert info.value.status == 504
            # Bounded by deadline + grace, not by hang_seconds.
            assert elapsed < 10.0
            # The hung worker was killed and respawned: the pool keeps
            # serving (the respawned worker's ordinal 1 already fired).
            faults.uninstall()
            record = client.query("a*", 0, 1)
            assert record["error"] is None

    def test_watchdog_reaps_deadline_less_wedge(self, graph):
        # No deadline anywhere: only the watchdog can detect the hang.
        # Each respawned worker hangs again on its 1st request, so the
        # retry budget exhausts into a 503 — but bounded by the
        # watchdog period, never by hang_seconds.
        faults.install(
            FaultPlan(worker_hang_at=(1,), hang_seconds=120.0)
        )
        registry = pool_registry(graph, watchdog_seconds=0.2)
        service = QueryService(registry, ServiceConfig(workers=2))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            start = time.monotonic()
            with pytest.raises(ServiceError) as info:
                client.query("a*", 0, 1)
            elapsed = time.monotonic() - start
            assert info.value.status == 503
            assert info.value.error_type == "worker_crash"
            assert elapsed < 30.0
            pool = registry.get("main").pool
            assert pool.stats()["watchdog_kills"] >= 1
            faults.uninstall()
            record = client.query("a*", 0, 1)
            assert record["error"] is None

    def test_healthz_degrades_then_recovers(self, graph):
        # The marquee chaos drill: healthy -> worker crashes trip the
        # breaker and climb the ladder (degraded) -> fault source
        # stops -> service heals itself within the backoff bounds.
        # The plan must be installed before the pool pre-forks: the
        # fault spec ships into workers at spawn (and respawn) time.
        faults.install(FaultPlan(worker_crash_at=(1,)))
        registry = pool_registry(graph)
        config = ServiceConfig(
            workers=2,
            breaker_threshold=1,
            breaker_cooldown=0.05,
            breaker_max_cooldown=0.4,
            breaker_jitter=0.0,
            degrade_recovery_seconds=0.05,
        )
        service = QueryService(registry, config)
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            assert client.healthz()["status"] == "ok"

            with pytest.raises(ServiceError) as info:
                client.query("a*", 0, 1)
            assert info.value.error_type == "worker_crash"
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["degradation"]["level"] >= 1

            faults.uninstall()
            give_up = time.monotonic() + 30.0
            healed = False
            while time.monotonic() < give_up:
                try:
                    record = client.query("a*", 0, 1)
                except ServiceError as err:
                    # Breaker cooldown / half-open refusals are the
                    # only acceptable failures during recovery.
                    assert err.status == 503
                    time.sleep(0.05)
                    continue
                assert record["error"] is None
                if client.healthz()["status"] == "ok":
                    healed = True
                    break
                time.sleep(0.05)
            assert healed, "service did not return to healthy in time"
            stats = client.stats()
        # A recovered breaker resets its opens streak; the cumulative
        # evidence of the incident lives in the ladder transitions and
        # the crash counters.
        assert stats["service"]["worker_crashes"] >= 1
        assert stats["resilience"]["breakers"]["main"]["state"] == "closed"
        assert stats["resilience"]["ladder"]["escalations"] >= 1
        assert stats["resilience"]["ladder"]["recoveries"] >= 1


# ---------------------------------------------------------------------------
# Registry spool faults over HTTP.
# ---------------------------------------------------------------------------


class TestSpoolFaults:
    def test_spool_io_error_is_503_then_retry_succeeds(self, graph):
        registry = GraphRegistry(
            worker_processes=1, pool_kwargs=dict(FAST_POOL)
        )
        service = QueryService(registry, ServiceConfig(workers=2))
        text = graph_io.dumps(graph)
        faults.install(FaultPlan(spool_errors=1))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            with pytest.raises(ServiceError) as info:
                client.register_graph("g", text)
            assert info.value.status == 503
            assert info.value.error_type == "spool_io"
            assert info.value.retry_after == pytest.approx(1.0)
            # The injected failure budget is spent: the retry spools
            # and pre-forks cleanly, and the pool answers correctly.
            client.register_graph("g", text)
            record = client.query("a*", 0, 1, graph="g")
        # Compare against the text round-trip (the wire format names
        # vertices as strings), not the original int-vertex graph.
        served_graph = graph_io.loads(text)
        assert verify_against_direct(
            served_graph, [("a*", "0", "1")], [record]
        ) == []


# ---------------------------------------------------------------------------
# Clock-skewed deadlines.
# ---------------------------------------------------------------------------


class TestSkewedDeadlines:
    def test_fast_clock_expires_generous_deadlines(self):
        # Odd a-cycle (see tests/test_service): the exact solver must
        # walk the whole chain, guaranteeing deadline checks fire.
        registry = GraphRegistry()
        registry.register("cycle", labeled_cycle("a" * 601))
        service = QueryService(registry, ServiceConfig(workers=1))
        faults.install(FaultPlan(deadline_skew_seconds=-100.0))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            with pytest.raises(ServiceError) as info:
                client.query("(aa)*", 0, 1, deadline_seconds=5.0)
            assert info.value.status == 504
            faults.uninstall()
            record = client.query("(aa)*", 0, 1, deadline_seconds=60.0)
            assert record["found"] is False


# ---------------------------------------------------------------------------
# Degradation ladder over HTTP: answer quality, never answer correctness.
# ---------------------------------------------------------------------------


class TestDegradedServing:
    @pytest.fixture
    def degradable(self):
        # 0 -a-> 1 -a-> 2 plus an isolated vertex 9: queries to 9 are
        # index-certified negatives even in reach-only mode.
        graph = DbGraph()
        graph.add_edge(0, "a", 1)
        graph.add_edge(1, "a", 2)
        graph.add_vertex(9)
        registry = GraphRegistry()
        registry.register("main", graph)
        service = QueryService(registry, ServiceConfig(workers=2))
        with ServiceThread(service) as running:
            yield ServiceClient(port=running.port), service, graph

    def test_portfolio_level_marks_degraded_and_stays_correct(
        self, degradable
    ):
        client, service, graph = degradable
        record = client.query("a*", 0, 2)
        assert record["degraded"] is False
        service.ladder.force(1)
        degraded = client.query("a*", 0, 2)
        assert degraded["degraded"] is True
        assert list(degraded) == list(RESULT_FIELDS)
        # Quality degrades, correctness does not.
        assert degraded["found"] == record["found"]
        assert degraded["word"] == record["word"]
        assert client.healthz()["status"] == "degraded"

    def test_reach_only_serves_certified_negatives_only(self, degradable):
        client, service, graph = degradable
        service.ladder.force(2)
        assert client.healthz()["degradation"]["level_name"] == (
            "reach-only"
        )
        # Unreachable target: the index *proves* NOT_FOUND.
        negative = client.query("a*", 0, 9)
        assert negative["found"] is False
        assert negative["degraded"] is True
        assert negative["error"] is None
        # Reachable work cannot be certified without a solver: shed.
        with pytest.raises(ServiceError) as info:
            client.query("a*", 0, 2)
        assert info.value.status == 503
        assert info.value.error_type == "degraded_reach_only"
        assert info.value.retry_after > 0
        # Batches are shed wholesale at this rung.
        with pytest.raises(ServiceError) as batch_info:
            client.batch([("a*", 0, 2)])
        assert batch_info.value.error_type == "degraded_reach_only"

    def test_batch_records_carry_degraded_flag(self, degradable):
        client, service, graph = degradable
        service.ladder.force(1)
        response = client.batch([("a*", 0, 2), ("a*", 0, 9)])
        assert all(r["degraded"] is True for r in response["results"])
        mismatches = verify_against_direct(
            graph,
            [("a*", 0, 2), ("a*", 0, 9)],
            response["results"],
        )
        assert mismatches == []


# ---------------------------------------------------------------------------
# Half-open probe discipline over HTTP: consumed probes never wedge.
# ---------------------------------------------------------------------------


def half_open_service(graph, **config_extra):
    """A one-graph service whose breaker is half-open in ~0.05s."""
    registry = GraphRegistry()
    registry.register("main", graph)
    config = ServiceConfig(
        workers=1,
        breaker_threshold=1,
        breaker_cooldown=0.05,
        breaker_jitter=0.0,
        **config_extra,
    )
    return QueryService(registry, config)


class TestProbeRecovery:
    def test_probe_burned_on_bad_input_does_not_wedge(self, graph):
        # The half-open probe request dies on a 400 (bad regex) after
        # clearing the breaker check: it proves nothing about graph
        # health, so the slot must return — the next good request
        # probes and closes the circuit instead of 503ing forever.
        service = half_open_service(graph)
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            service._breaker("main").record_failure()
            time.sleep(0.1)  # cooldown elapses: next request probes
            with pytest.raises(ServiceError) as info:
                client.query("a*(", 0, 1)
            assert info.value.status == 400
            record = client.query("a*", 0, 1)
            assert record["error"] is None
            stats = client.stats()
        assert stats["resilience"]["breakers"]["main"]["state"] == "closed"

    def test_probe_shed_by_admission_does_not_wedge(self, graph):
        # The probe clears the breaker but the load shedder 429s it
        # (admission runs after the breaker check): same discipline.
        service = half_open_service(graph, max_inflight=1)
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            service._breaker("main").record_failure()
            time.sleep(0.1)
            service.shedder.admit(1)  # hold the only slot
            try:
                with pytest.raises(ServiceOverloadedError):
                    client.query("a*", 0, 1)
            finally:
                service.shedder.release(1)
            record = client.query("a*", 0, 1)
            assert record["error"] is None
            stats = client.stats()
        assert stats["resilience"]["breakers"]["main"]["state"] == "closed"

    def test_reach_only_negative_closes_a_half_open_breaker(self):
        # While the ladder is pinned at reach-only, served certified
        # negatives are successes: a half-open breaker must close on
        # them, not stay open until full service resumes.
        graph = DbGraph()
        graph.add_edge(0, "a", 1)
        graph.add_vertex(9)
        service = half_open_service(graph)
        service.ladder.force(2)
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            service._breaker("main").record_failure()
            time.sleep(0.1)
            negative = client.query("a*", 0, 9)
            assert negative["found"] is False
            assert negative["degraded"] is True
            stats = client.stats()
        assert stats["resilience"]["breakers"]["main"]["state"] == "closed"


# ---------------------------------------------------------------------------
# Retry-After plumbing: server headers/body, client honoring them.
# ---------------------------------------------------------------------------


class TestRetryAfter:
    def test_429_carries_header_and_structured_body(self, graph):
        registry = GraphRegistry()
        registry.register("main", graph)
        service = QueryService(
            registry, ServiceConfig(workers=1, max_inflight=1)
        )
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            status, body, headers = client.request_full(
                "POST",
                "/batch",
                {"queries": [["a*", 0, 1], ["a*", 1, 2]]},
            )
        assert status == 429
        assert body["error_type"] == "overloaded"
        assert body["retry_after"] > 0
        assert int(headers["retry-after"]) == math.ceil(
            body["retry_after"]
        )

    def test_open_circuit_is_503_with_retry_after(self, graph):
        registry = GraphRegistry()
        registry.register("main", graph)
        service = QueryService(
            registry,
            ServiceConfig(
                workers=1,
                breaker_threshold=2,
                breaker_cooldown=5.0,
                breaker_jitter=0.0,
            ),
        )
        with ServiceThread(service) as running:
            breaker = service._breaker("main")
            breaker.record_failure()
            breaker.record_failure()
            client = ServiceClient(port=running.port)
            status, body, headers = client.request_full(
                "POST",
                "/query",
                {"language": "a*", "source": 0, "target": 1},
            )
        assert status == 503
        assert body["error_type"] == "circuit_open"
        assert 0 < body["retry_after"] <= 5.0
        assert "retry-after" in headers

    def test_client_retries_through_a_cooldown(self, graph):
        registry = GraphRegistry()
        registry.register("main", graph)
        service = QueryService(
            registry,
            ServiceConfig(
                workers=1,
                breaker_threshold=1,
                breaker_cooldown=0.2,
                breaker_jitter=0.0,
            ),
        )
        with ServiceThread(service) as running:
            service._breaker("main").record_failure()
            client = ServiceClient(
                port=running.port,
                max_retries=5,
                backoff_seconds=0.01,
                backoff_jitter=0.0,
            )
            start = time.monotonic()
            record = client.query("a*", 0, 1)
            elapsed = time.monotonic() - start
        assert record["error"] is None
        assert client.retries >= 1
        # The client slept through the server-announced cooldown
        # instead of hammering: total wait covers the 0.2s window.
        assert elapsed >= 0.15

    def test_connect_failures_retry_only_idempotent_calls(self):
        # Nothing listens on this port: every request dies at connect.
        # Pure queries retry up to the cap; registration must not —
        # after a send the client cannot prove the server did not
        # already apply it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            port=port,
            max_retries=2,
            backoff_seconds=0.01,
            backoff_jitter=0.0,
            connect_timeout=0.5,
        )
        with pytest.raises(OSError):
            client.register_graph("g", "v 0\n")
        assert client.retries == 0
        with pytest.raises(OSError):
            client.evict_graph("g")
        assert client.retries == 0
        with pytest.raises(OSError):
            client.query("a*", 0, 1)
        assert client.retries == 2

    def test_retry_delay_prefers_body_then_header_then_backoff(self):
        client = ServiceClient(
            backoff_seconds=0.05, backoff_cap=2.0, backoff_jitter=0.0
        )
        body_hint = client._retry_delay(
            1, {"retry_after": 0.3}, {"retry-after": "2"}
        )
        assert body_hint == pytest.approx(0.3)
        header_hint = client._retry_delay(1, None, {"retry-after": "2"})
        assert header_hint == pytest.approx(2.0)
        backoff = client._retry_delay(3, None, None)
        assert backoff == pytest.approx(0.05 * 4)
        capped = client._retry_delay(10, None, None)
        assert capped == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Snapshot replaced/corrupted on disk while a pool serves from it.
# ---------------------------------------------------------------------------


class TestSnapshotSwapUnderServing:
    def test_pool_survives_on_disk_replacement(self, tmp_path, graph):
        path = str(tmp_path / "live.snap")
        save_snapshot(IndexedGraph(graph), path)
        with open(path, "rb") as handle:
            good_bytes = handle.read()

        registry = GraphRegistry(
            worker_processes=1, pool_kwargs=dict(FAST_POOL)
        )
        registry.register_snapshot("snap", path)
        service = QueryService(registry, ServiceConfig(workers=2))
        with ServiceThread(service) as running:
            client = ServiceClient(port=running.port)
            before = client.query("a*", 0, 1, graph="snap")
            assert verify_against_direct(
                graph, [("a*", 0, 1)], [before]
            ) == []

            # Replace the snapshot with a truncated husk *while the
            # pool serves from it*.  The attached mapping pins the old
            # inode, so in-flight serving must not notice.
            husk = str(tmp_path / "husk.snap")
            with open(husk, "wb") as handle:
                handle.write(good_bytes[: len(good_bytes) // 2])
            os.replace(husk, path)

            after = [
                client.query(lang, source, target, graph="snap")
                for lang, source, target in QUERIES
            ]
            assert verify_against_direct(graph, QUERIES, after) == []

            # A *new* registration sees the damage and fails cleanly —
            # a refusal, not a crash, and not a wrong graph.
            with pytest.raises(SnapshotError):
                registry.register_snapshot("fresh", path)

            # Restore the good bytes: registration works again.
            restored = str(tmp_path / "restored.snap")
            with open(restored, "wb") as handle:
                handle.write(good_bytes)
            os.replace(restored, path)
            registry.register_snapshot("fresh", path)
            again = client.query("a*", 0, 1, graph="fresh")
            assert verify_against_direct(
                graph, [("a*", 0, 1)], [again]
            ) == []
