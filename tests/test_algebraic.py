"""Tests for the algebraic bounded simple-path detector.

The multilinear-detection property is algebraic, not statistical:
every walk revisiting a vertex contributes exactly zero over
``GF(2^16)[Z_2^r]`` in characteristic 2, so ``True`` answers are
certified.  The differential block pins the decision against the
exact solver's ground truth; Monte-Carlo ``False`` misses would fail
the one-sided assertions with probability < 1e-3 per instance.
"""

import pytest

from tests.conftest import random_instance

from repro.algorithms.algebraic import (
    MAX_GROUP_RANK,
    AlgebraicSolver,
    gf_mul,
    runs_for_prob,
)
from repro.algorithms.exact import ExactSolver
from repro.errors import BudgetExceededError
from repro.execution import ExecutionContext
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import labeled_path
from repro.languages import language


class TestFieldArithmetic:
    def test_zero_absorbs(self):
        assert gf_mul(0, 12345) == 0
        assert gf_mul(12345, 0) == 0

    def test_one_is_identity(self):
        for value in (1, 2, 0x1234, 0xFFFF):
            assert gf_mul(1, value) == value

    def test_multiplication_is_invertible(self):
        # A field has no zero divisors: products of nonzero elements
        # are nonzero (the certification argument relies on this).
        for a in (3, 0x8001, 0xBEEF):
            for b in (7, 0x4242, 0xFFFF):
                assert gf_mul(a, b) != 0


class TestRunCalibration:
    def test_more_runs_for_stricter_bounds(self):
        assert runs_for_prob(1e-6) > runs_for_prob(1e-2)

    def test_invalid_bounds_rejected(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                runs_for_prob(bad)


class TestExists:
    def test_detects_path_on_a_line(self):
        graph = labeled_path("aba")
        solver = AlgebraicSolver("aba")
        assert solver.exists(graph, 0, 3, 3)

    def test_respects_length_bound(self):
        graph = labeled_path("aaaa")
        solver = AlgebraicSolver("a{4}")
        assert not solver.exists(graph, 0, 4, 3)
        assert solver.exists(graph, 0, 4, 4)

    def test_source_equals_target_is_the_empty_path(self):
        graph = labeled_path("a")
        assert AlgebraicSolver("a*").exists(graph, 0, 0, 2)
        assert not AlgebraicSolver("aa*").exists(graph, 0, 0, 2)

    def test_rank_cap_is_a_value_error(self):
        graph = labeled_path("a")
        solver = AlgebraicSolver("a*")
        with pytest.raises(ValueError, match="MAX_GROUP_RANK"):
            solver.exists(graph, 0, 1, MAX_GROUP_RANK)
        with pytest.raises(ValueError):
            solver.exists(graph, 0, 1, -1)

    def test_non_simple_walks_cancel(self):
        # The only (aa)*-walk 0-1-2-3-1-2-4 revisits vertices, so its
        # contribution is algebraically zero in every run: the answer
        # must be False deterministically, not merely w.h.p.
        graph = DbGraph()
        for u, l, v in [
            (0, "a", 1), (1, "a", 2), (2, "a", 3), (3, "a", 1),
            (2, "a", 4),
        ]:
            graph.add_edge(u, l, v)
        solver = AlgebraicSolver("(aa)*", failure_probability=0.5)
        assert not solver.exists(graph, 0, 4, 6)

    def test_deterministic_per_seed(self):
        graph, x, y = random_instance(3, "ab", max_vertices=8)
        a = AlgebraicSolver("a*ba*", seed=7)
        b = AlgebraicSolver("a*ba*", seed=7)
        assert a.exists(graph, x, y, 5) == b.exists(graph, x, y, 5)

    def test_budget_bites_inside_a_run(self):
        graph = labeled_path("aaaaaa")
        solver = AlgebraicSolver("(aa)*")
        ctx = ExecutionContext(budget=1)
        with pytest.raises(BudgetExceededError):
            # The layered DP charges one step per expanded product
            # state, so a one-step budget must fire inside the first
            # run — not after it.
            solver.exists(graph, 0, 6, 6, ctx=ctx)

    @pytest.mark.parametrize("regex", ["a*ba*", "(aa)*", "a*c*"])
    def test_differential_against_exact(self, regex):
        lang = language(regex)
        algebraic = AlgebraicSolver(lang, seed=11)
        exact = ExactSolver(lang)
        alphabet = sorted(lang.alphabet)
        for seed in range(12):
            graph, x, y = random_instance(seed, alphabet, max_vertices=7)
            k = 4
            truth_path = exact.shortest_simple_path(graph, x, y)
            truth = truth_path is not None and len(truth_path) <= k
            got = algebraic.exists(graph, x, y, k)
            if got:
                # True is certified: it may never contradict exact.
                assert truth, (regex, seed)
            else:
                assert not truth, (
                    "algebraic miss (prob < 1e-3) on %r seed %d"
                    % (regex, seed)
                )
