"""Pre-fork worker pool: differential answers, crashes, mmap lifecycle.

The pool's contract is *bit-identical serving*: every answer produced
by N forked workers attached to one shared snapshot must match, path
for path, what a single in-process :class:`QueryEngine` (and the raw
:func:`solve_rspq` library call) produces — including when overrides
tighten budgets or deadlines, and including across a mid-run worker
crash (queries are pure, so the retry on a respawned sibling is
invisible to the caller).

The mmap lifecycle tests pin POSIX semantics the serving design leans
on: deleting or replacing the snapshot file never disturbs already
attached workers (the old inode lives until the last mapping drops),
while *fresh* attaches see the new file or fail with a clean
:class:`SnapshotError`.
"""

import os

import pytest

from repro.core.solver import solve_rspq
from repro.engine import IndexedGraph, QueryEngine
from repro.errors import (
    BudgetExceededError,
    GraphError,
    ReproError,
    SnapshotError,
    WorkerCrashError,
)
from repro.graphs.generators import labeled_cycle, random_labeled_graph
from repro.service import GraphRegistry, save_snapshot
from repro.service.workers import WorkerPool

QUERIES = [
    ("a*", 0, 1),
    ("a*(bb^+ + eps)c*", 0, 5),
    ("ab + ba", 2, 3),
    ("a*ba*", 4, 5),
    ("(ab)^+", 1, 4),
    ("c*a", 3, 0),
    ("a*", 0, 1),  # repeat: exercises the per-worker result cache
    ("b^+", 5, 2),
]


@pytest.fixture
def graph():
    return random_labeled_graph(25, 80, "abc", seed=3)


@pytest.fixture
def snap_path(tmp_path, graph):
    path = str(tmp_path / "graph.snap")
    save_snapshot(IndexedGraph(graph), path)
    return path


@pytest.fixture
def pool(snap_path):
    with WorkerPool(snap_path, workers=2) as running:
        yield running


def assert_results_identical(served, direct):
    assert served.found == direct.found
    assert served.strategy == direct.strategy
    assert served.confidence == direct.confidence
    assert served.error == direct.error
    if direct.path is None:
        assert served.path is None
    else:
        assert list(served.path.vertices) == list(direct.path.vertices)
        assert served.path.word == direct.path.word


class TestDifferential:
    def test_query_matches_engine_and_direct(self, pool, snap_path, graph):
        engine = QueryEngine(IndexedGraph(graph))
        for language, source, target in QUERIES:
            served = pool.query(language, source, target)
            assert_results_identical(
                served, engine.query(language, source, target)
            )
            direct = solve_rspq(language, graph, source, target)
            assert served.found == direct.found
            if direct.path is not None:
                assert list(served.path.vertices) == list(
                    direct.path.vertices
                )

    def test_graph_errors_reconstructed_by_class(self, pool):
        with pytest.raises(GraphError, match="unknown"):
            pool.query("a*", 999, 1)

    def test_batch_matches_engine_vectorized_and_serial(self, pool, graph):
        engine = QueryEngine(IndexedGraph(graph))
        expected = engine.run_batch(QUERIES)
        for vectorize in (True, False):
            batch = pool.run_batch(QUERIES, vectorize=vectorize)
            assert len(batch.results) == len(QUERIES)
            for served, direct in zip(batch.results, expected.results):
                assert_results_identical(served, direct)

    def test_batch_isolates_per_query_errors(self, pool, graph):
        queries = [("a*", 0, 1), ("a*", 999, 1)]
        batch = pool.run_batch(queries)
        expected = QueryEngine(IndexedGraph(graph)).run_batch(queries)
        assert batch.results[0].error is None
        assert batch.results[0].found == expected.results[0].found
        assert batch.results[1].error == expected.results[1].error

    def test_budget_override_matches_cold_engine(self, tmp_path):
        # Budget comparisons need matching cache states: a warm result
        # cache replays answers no fresh budgeted solve could reach, so
        # both sides run with the cache off.
        cycle = labeled_cycle("ababababa")
        path = str(tmp_path / "cycle.snap")
        save_snapshot(IndexedGraph(cycle), path)
        engine = QueryEngine(IndexedGraph(cycle), result_cache=False)
        queries = [("a*", 0, 1), ("(ab)^+ba", 0, 5), ("b*a*b*", 2, 7)]
        with WorkerPool(
            path, engine_kwargs={"result_cache": False}, workers=2
        ) as pool:
            for language, source, target in queries:
                for budget in (5, 100000):
                    outcomes = []
                    for run in (
                        lambda: pool.query(
                            language, source, target, budget=budget
                        ),
                        lambda: engine.query(
                            language, source, target, budget=budget
                        ),
                    ):
                        try:
                            outcomes.append(("ok", run().found))
                        except BudgetExceededError:
                            outcomes.append(("budget", None))
                    assert outcomes[0] == outcomes[1]
            served = pool.run_batch(queries, budget=5)
            direct = engine.run_batch(queries, budget=5)
            for pool_result, engine_result in zip(
                served.results, direct.results
            ):
                assert_results_identical(pool_result, engine_result)

    def test_deadline_override_matches_engine(self, pool, graph):
        # A generous deadline must not perturb answers (the engine
        # disables shared sweeps whenever a deadline is in force, and
        # the pool mirrors that choice).
        engine = QueryEngine(IndexedGraph(graph))
        served = pool.run_batch(QUERIES, deadline_seconds=30.0)
        direct = engine.run_batch(QUERIES, deadline_seconds=30.0)
        for pool_result, engine_result in zip(
            served.results, direct.results
        ):
            assert_results_identical(pool_result, engine_result)

    def test_batch_aggregates_worker_cache_stats(self, pool):
        batch = pool.run_batch(QUERIES, vectorize=False)
        assert batch.cache_stats.compiles >= 1
        assert batch.workers == 2


class TestCrashRecovery:
    def test_respawn_then_identical_results(self, pool, graph):
        engine = QueryEngine(IndexedGraph(graph))
        before = [pool.query(lang, s, t) for lang, s, t in QUERIES]
        pool.kill_worker(0)
        pool.kill_worker(1)
        after = [pool.query(lang, s, t) for lang, s, t in QUERIES]
        for first, second in zip(before, after):
            assert_results_identical(first, second)
        for served, (language, source, target) in zip(after, QUERIES):
            assert_results_identical(
                served, engine.query(language, source, target)
            )
        stats = pool.stats()
        assert stats["crashes"] >= 2
        assert stats["respawns"] >= 2

    def test_retry_budget_exhaustion_surfaces_worker_crash_error(
        self, pool
    ):
        # The "exit" frame is the crash drill: every worker that picks
        # it up dies without replying, so the request burns through its
        # retries and surfaces as WorkerCrashError — after which the
        # respawned pool keeps serving.
        with pytest.raises(WorkerCrashError, match="died"):
            pool._roundtrip(("exit", 1))
        assert pool.query("a*", 0, 1) is not None
        assert pool.stats()["respawns"] >= pool.max_retries

    def test_worker_crash_error_is_repro_error(self):
        assert issubclass(WorkerCrashError, ReproError)


class TestMmapLifecycle:
    def test_unlink_while_attached_keeps_serving(self, snap_path, graph):
        engine = QueryEngine(IndexedGraph(graph))
        with WorkerPool(snap_path, workers=1) as pool:
            os.unlink(snap_path)
            for language, source, target in QUERIES[:4]:
                assert_results_identical(
                    pool.query(language, source, target),
                    engine.query(language, source, target),
                )

    def test_replace_while_attached_keeps_old_graph(
        self, snap_path, graph
    ):
        from repro.service.snapshot import attach_snapshot

        engine = QueryEngine(IndexedGraph(graph))
        replacement = labeled_cycle("aaaa")
        with WorkerPool(snap_path, workers=1) as pool:
            save_snapshot(IndexedGraph(replacement), snap_path)
            # Attached workers still serve the old inode ...
            assert_results_identical(
                pool.query("a*(bb^+ + eps)c*", 0, 5),
                engine.query("a*(bb^+ + eps)c*", 0, 5),
            )
            # ... while a fresh attach sees the new file.
            fresh = attach_snapshot(snap_path)
            assert fresh.num_vertices == replacement.num_vertices
            assert fresh.num_edges == replacement.num_edges

    def test_respawn_after_delete_is_clean_snapshot_error(self, snap_path):
        with WorkerPool(
            snap_path, workers=1, max_retries=1, respawn_backoff=0.0
        ) as pool:
            os.unlink(snap_path)
            pool.kill_worker(0)
            with pytest.raises(SnapshotError, match="could not attach"):
                pool.query("a*", 0, 1)

    def test_truncated_fresh_attach_raises(self, snap_path):
        from repro.service.snapshot import attach_snapshot

        size = os.path.getsize(snap_path)
        with open(snap_path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(SnapshotError):
            attach_snapshot(snap_path)

    def test_pool_on_missing_snapshot_fails_at_construction(self, tmp_path):
        with pytest.raises(SnapshotError):
            WorkerPool(str(tmp_path / "absent.snap"), workers=1)


class TestPoolStats:
    def test_stats_shape_and_counters(self, pool):
        pool.query("a*", 0, 1)
        pool.run_batch(QUERIES[:4])
        stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["requests"] >= 2
        assert stats["sampled"] == 2
        assert stats["aggregate"]["served_queries"] >= 5
        assert len(stats["per_worker"]) == 2
        for block in stats["per_worker"]:
            assert block["pid"] > 0
            assert set(block["plan_cache"]) == {
                "hits", "misses", "evictions", "compiles",
            }

    def test_per_worker_rss_stays_flat(self, pool):
        # The whole point of attach-by-path: worker RSS is fork
        # inheritance plus engine overhead, never a private copy of
        # the graph.  Forked children start from the parent's
        # footprint, so the bound is relative — a pickled-graph worker
        # would add the whole graph on top of it.
        from repro.service.workers import _rss_mb

        pool.run_batch(QUERIES)
        parent_rss = _rss_mb()
        for block in pool.stats()["per_worker"]:
            if block["rss_mb"] is None or parent_rss is None:
                continue
            assert block["rss_mb"] < parent_rss + 32.0


class TestPoolBackedService:
    def _random_queries(self, graph, count=24, seed=11):
        import random

        rng = random.Random(seed)
        vertices = list(graph.vertices())
        languages = ["a*", "a*(bb^+ + eps)c*", "ab + ba", "(ab)^+", "c*a"]
        return [
            (
                languages[index % len(languages)],
                rng.choice(vertices),
                rng.choice(vertices),
            )
            for index in range(count)
        ]

    def test_registry_spools_snapshot_and_serves_identically(self, graph):
        from repro.service import (
            QueryService, ServiceClient, ServiceConfig, ServiceThread,
        )
        from repro.service.client import run_load, verify_against_direct

        registry = GraphRegistry(worker_processes=2)
        try:
            entry = registry.register("main", graph)
            assert entry.pool is not None
            assert entry.pool.workers == 2
            assert os.path.exists(entry.pool.snapshot_path)
            queries = self._random_queries(graph)
            service = QueryService(registry, ServiceConfig(workers=2))
            with ServiceThread(service) as running:
                client = ServiceClient(port=running.port)
                records = run_load(
                    client, queries, graph="main", batch_size=8, workers=2
                )
                stats = client.stats()
            assert verify_against_direct(graph, queries, records) == []
            (graph_stats,) = stats["graphs"]
            workers_block = graph_stats["workers"]
            assert workers_block["workers"] == 2
            assert workers_block["aggregate"]["served_queries"] >= len(
                queries
            )
            assert graph_stats["snapshot_path"] == entry.pool.snapshot_path
        finally:
            registry.close()

    def test_register_snapshot_attaches_for_pool(self, snap_path, graph):
        registry = GraphRegistry(worker_processes=1)
        try:
            entry = registry.register_snapshot("warm", snap_path)
            assert entry.pool is not None
            assert entry.pool.snapshot_path == snap_path
            served = entry.pool.query("a*(bb^+ + eps)c*", 0, 5)
            direct = solve_rspq("a*(bb^+ + eps)c*", graph, 0, 5)
            assert served.found == direct.found
        finally:
            registry.close()

    def test_close_terminates_workers_and_spool(self, graph):
        registry = GraphRegistry(worker_processes=1)
        entry = registry.register("main", graph)
        pool = entry.pool
        spooled = pool.snapshot_path
        processes = [handle.process for handle in pool._handles]
        registry.close()
        for process in processes:
            process.join(timeout=5.0)
            assert not process.is_alive()
        assert not os.path.exists(spooled)

    def test_single_query_via_http_uses_pool(self, graph):
        from repro.service import (
            QueryService, ServiceClient, ServiceConfig, ServiceThread,
        )

        registry = GraphRegistry(worker_processes=1)
        try:
            registry.register("main", graph)
            service = QueryService(registry, ServiceConfig(workers=2))
            with ServiceThread(service) as running:
                client = ServiceClient(port=running.port)
                record = client.query("a*(bb^+ + eps)c*", 0, 5)
            direct = solve_rspq("a*(bb^+ + eps)c*", graph, 0, 5)
            assert record["found"] == direct.found
            assert record["strategy"] == direct.strategy
        finally:
            registry.close()

    def test_negative_worker_processes_rejected(self):
        with pytest.raises(ValueError):
            GraphRegistry(worker_processes=-1)
