"""Tests for the finite-language (AC0) solver."""

import pytest

from tests.conftest import paths_agree, random_instance

from repro import catalog
from repro.algorithms.bounded import FiniteLanguageSolver, find_simple_word_path
from repro.algorithms.exact import ExactSolver
from repro.errors import ReproError
from repro.graphs.dbgraph import DbGraph, Path
from repro.graphs.generators import labeled_cycle, labeled_path
from repro.languages import language


class TestFindSimpleWordPath:
    def test_exact_word(self):
        graph = labeled_path("abc")
        path = find_simple_word_path(graph, 0, 3, "abc")
        assert path is not None
        assert path.word == "abc"

    def test_word_not_present(self):
        graph = labeled_path("abc")
        assert find_simple_word_path(graph, 0, 3, "abd") is None

    def test_simplicity_enforced(self):
        # aa on a 1-cycle would have to revisit the vertex.
        graph = labeled_cycle("a")
        assert find_simple_word_path(graph, 0, 0, "a") is None

    def test_target_not_revisited_midway(self):
        # Path through the target mid-word is not simple.
        graph = DbGraph.from_edges(
            [(0, "a", 1), (1, "a", 2), (2, "a", 1)]
        )
        assert find_simple_word_path(graph, 0, 1, "aaa") is None

    def test_empty_word(self):
        graph = labeled_path("a")
        assert find_simple_word_path(graph, 0, 0, "") == Path.single(0)
        assert find_simple_word_path(graph, 0, 1, "") is None


class TestFiniteSolver:
    def test_requires_finite_language(self):
        with pytest.raises(ReproError):
            FiniteLanguageSolver(language("a*"))

    def test_shortest_word_preferred(self):
        graph = DbGraph.from_edges(
            [(0, "a", 9), (0, "b", 1), (1, "b", 9)]
        )
        solver = FiniteLanguageSolver(language("bb + a"))
        path = solver.shortest_simple_path(graph, 0, 9)
        assert path.word == "a"

    @pytest.mark.parametrize(
        "entry",
        [e for e in catalog.entries() if e.finite],
        ids=lambda e: e.name,
    )
    def test_agreement_with_exact(self, entry):
        lang = entry.language()
        alphabet = sorted(lang.alphabet) or ["a"]
        solver = FiniteLanguageSolver(lang)
        exact = ExactSolver(lang)
        for seed in range(15):
            graph, x, y = random_instance(seed, alphabet, max_vertices=8)
            assert paths_agree(
                solver.shortest_simple_path(graph, x, y),
                exact.shortest_simple_path(graph, x, y),
            ), (entry.name, seed)

    def test_word_list_is_complete(self):
        solver = FiniteLanguageSolver(language("(a + b)(a + b)?"))
        assert sorted(solver.words) == sorted(
            ["a", "b", "aa", "ab", "ba", "bb"]
        )
