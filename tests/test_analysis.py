"""Tests for DFA structural analysis (components, loops, aperiodicity)."""

import pytest

from repro.languages import language
from repro.languages.analysis import (
    component_of,
    has_loop,
    has_loop_with_last_letter,
    internal_alphabet,
    is_aperiodic,
    loop_nfa,
    looping_states,
    strongly_connected_components,
    transition_monoid,
)


def _dfa(text, alphabet=None):
    return language(text, alphabet=alphabet).dfa


class TestComponents:
    def test_topological_order(self):
        dfa = _dfa("a*ba*")
        components = strongly_connected_components(dfa)
        index = {}
        for position, component in enumerate(components):
            for state in component:
                index[state] = position
        for state, _symbol, target in dfa.transitions():
            assert index[state] <= index[target]

    def test_component_of(self):
        dfa = _dfa("a*")
        components = strongly_connected_components(dfa)
        assert dfa.initial in component_of(components, dfa.initial)

    def test_example2_has_three_looping_components(self):
        # Figure 2: C1 = {q4}, C2 = {q5, q6}, C3 = {q7} (plus sink loops).
        dfa = _dfa("a(c{2,} + eps)(a+b)*(ac)?a*")
        loops = looping_states(dfa)
        components = [
            c for c in strongly_connected_components(dfa) if c & loops
        ]
        non_sink = [
            c
            for c in components
            if any(dfa.with_initial(q).is_empty() is False for q in c)
        ]
        assert len(non_sink) == 3

    def test_internal_alphabet(self):
        dfa = _dfa("a*ba*")
        for component in strongly_connected_components(dfa):
            (state,) = list(component)[:1]
            if has_loop(dfa, state) and not dfa.with_initial(state).is_empty():
                assert internal_alphabet(dfa, component) == {"a"}


class TestLoops:
    def test_has_loop(self):
        dfa = _dfa("a*b")
        assert has_loop(dfa, dfa.initial)
        after_b = dfa.transition(dfa.initial, "b")
        # The accepting state of a*b has no non-sink loop back to itself.
        assert not has_loop(dfa, after_b) or dfa.with_initial(after_b).is_empty()

    def test_looping_states_of_finite_language(self):
        dfa = _dfa("ab", alphabet={"a", "b"})
        loops = looping_states(dfa)
        # Only the sink can loop in a finite language's DFA.
        for state in loops:
            assert dfa.with_initial(state).is_empty()

    def test_loop_nfa_words(self):
        dfa = _dfa("(ab)*c")
        q0 = dfa.initial
        nfa = loop_nfa(dfa, q0, min_loops=1)
        assert nfa.accepts("ab")
        assert nfa.accepts("abab")
        assert not nfa.accepts("a")
        assert not nfa.accepts("")

    def test_loop_nfa_power(self):
        dfa = _dfa("a*")
        nfa = loop_nfa(dfa, dfa.initial, min_loops=3)
        assert nfa.accepts("aaa")
        assert nfa.accepts("aaaa")  # splits as a · a · aa
        assert not nfa.accepts("aa")

    def test_loop_with_last_letter(self):
        dfa = _dfa("(ab)*")
        q0 = dfa.initial
        q1 = dfa.transition(q0, "a")
        assert has_loop_with_last_letter(dfa, q0, "b")
        assert not has_loop_with_last_letter(dfa, q0, "a")
        assert has_loop_with_last_letter(dfa, q1, "a")
        assert not has_loop_with_last_letter(dfa, q1, "b")


class TestAperiodicity:
    @pytest.mark.parametrize(
        "text,aperiodic",
        [
            ("a*ba*", True),
            ("a*(bb+ + eps)c*", True),
            ("(aa)*", False),
            # (ab)* is star-free, hence aperiodic — yet not in trC:
            # aperiodicity is necessary for trC, not sufficient.
            ("(ab)*", True),
            ("abc", True),
            ("(a+b)*", True),
            ("(aaa)*", False),
        ],
    )
    def test_known_languages(self, text, aperiodic):
        assert is_aperiodic(_dfa(text)) is aperiodic

    def test_trc_languages_are_aperiodic(self):
        # The paper: every trC language is aperiodic (Claim 2).
        from repro import catalog
        from repro.core.trc import is_in_trc

        for entry in catalog.entries():
            dfa = _dfa(entry.regex)
            if is_in_trc(dfa):
                assert is_aperiodic(dfa), entry.name

    def test_transition_monoid_size(self):
        # Over one letter, the monoid of (aa)* is {identity, swap}.
        monoid = transition_monoid(_dfa("(aa)*"))
        assert len(monoid) == 2
