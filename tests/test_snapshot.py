"""Snapshot persistence: exact round-trips, versioning, corruption.

The warm-start contract: a thawed :class:`IndexedGraph` must be
indistinguishable from the compiled original — same vertices in the
same order, same adjacency, same CSR reads, same solver answers path
for path — and a damaged snapshot must fail loudly with
:class:`SnapshotError`, never produce a silently wrong graph.
"""

import struct

import pytest

from repro.core.solver import solve_rspq
from repro.engine import IndexedGraph, QueryEngine
from repro.errors import SnapshotError
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import labeled_cycle, random_labeled_graph
from repro.service.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)


@pytest.fixture
def graph():
    return random_labeled_graph(25, 80, "abc", seed=3)


@pytest.fixture
def snap_path(tmp_path, graph):
    path = str(tmp_path / "graph.snap")
    save_snapshot(IndexedGraph(graph), path)
    return path


class TestRoundTrip:
    def test_structure_is_identical(self, graph, snap_path):
        original = IndexedGraph(graph)
        thawed = load_snapshot(snap_path)
        assert list(thawed.vertices()) == list(original.vertices())
        assert list(thawed.edges()) == list(original.edges())
        assert thawed.num_vertices == original.num_vertices
        assert thawed.num_edges == original.num_edges
        assert thawed.labels() == original.labels()

    def test_adjacency_reads_are_identical(self, graph, snap_path):
        original = IndexedGraph(graph)
        thawed = load_snapshot(snap_path)
        for vertex in original.vertices():
            assert thawed.sorted_out_edges(vertex) == (
                original.sorted_out_edges(vertex)
            )
            assert list(thawed.in_edges(vertex)) == list(
                original.in_edges(vertex)
            )
            for label in original.labels():
                assert thawed.sorted_successors(vertex, label) == (
                    original.sorted_successors(vertex, label)
                )
                vid = original.vertex_id(vertex)
                assert list(thawed.out_neighbor_ids(vid, label)) == list(
                    original.out_neighbor_ids(vid, label)
                )

    def test_vertex_types_survive(self, tmp_path):
        graph = DbGraph.from_edges(
            [(0, "a", "one"), ("one", "b", 2), (2, "a", 0)]
        )
        path = str(tmp_path / "mixed.snap")
        save_snapshot(IndexedGraph(graph), path)
        thawed = load_snapshot(path)
        # int 0 and str "one" come back with their exact types.
        assert list(thawed.vertices()) == list(IndexedGraph(graph).vertices())
        assert thawed.has_vertex(0)
        assert thawed.has_vertex("one")
        assert not thawed.has_vertex("0")

    def test_solver_answers_are_path_identical(self, graph, snap_path):
        cold = QueryEngine(IndexedGraph(graph))
        warm = QueryEngine(load_snapshot(snap_path))
        queries = [
            ("a*(bb^+ + eps)c*", 0, 5),
            ("ab + ba", 1, 7),
            ("a*ba*", 2, 9),
            ("c*", 3, 11),
        ]
        for regex, source, target in queries:
            one = cold.query(regex, source, target)
            other = warm.query(regex, source, target)
            assert one.found == other.found
            assert one.strategy == other.strategy
            if one.path is None:
                assert other.path is None
            else:
                assert one.path.vertices == other.path.vertices
                assert one.path.word == other.path.word

    def test_has_edge_and_is_path_on_thawed_graph(self, graph, snap_path):
        thawed = load_snapshot(snap_path)
        edge = next(iter(IndexedGraph(graph).edges()))
        assert thawed.has_edge(*edge)
        assert not thawed.has_edge(edge[0], "z", edge[2])

    def test_thawed_graph_crosses_process_boundaries(self, graph, snap_path):
        # process-mode batches pickle the compiled graph into workers;
        # a thawed view must survive the trip like a compiled one.
        engine = QueryEngine(load_snapshot(snap_path))
        queries = [("a*", 0, 5), ("ab + ba", 1, 7)]
        processed = engine.run_batch(queries, workers=2, mode="process")
        serial = engine.run_batch(queries)
        for one, other in zip(processed, serial):
            assert one.found == other.found
            assert one.path == other.path

    def test_cycle_graph_roundtrip(self, tmp_path):
        graph = labeled_cycle("abcab")
        path = str(tmp_path / "cycle.snap")
        save_snapshot(IndexedGraph(graph), path)
        thawed = load_snapshot(path)
        assert list(thawed.edges()) == list(IndexedGraph(graph).edges())

    def test_save_accepts_raw_dbgraph(self, tmp_path, graph):
        path = str(tmp_path / "raw.snap")
        save_snapshot(graph, path)  # compiled internally
        assert load_snapshot(path).num_edges == graph.num_edges

    def test_info_reads_header_only(self, graph, snap_path):
        info = snapshot_info(snap_path)
        assert info["format_version"] == FORMAT_VERSION
        assert info["num_vertices"] == graph.num_vertices
        assert info["num_edges"] == graph.num_edges
        assert info["labels"] == ["a", "b", "c"]


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="does not exist"):
            load_snapshot(str(tmp_path / "nope.snap"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.snap"
        path.write_bytes(b"")
        with pytest.raises(SnapshotError, match="empty"):
            load_snapshot(str(path))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.snap"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 64)
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(str(path))

    def test_unsupported_version(self, tmp_path, snap_path):
        data = bytearray(open(snap_path, "rb").read())
        data[8:12] = struct.pack("<I", FORMAT_VERSION + 1)
        path = tmp_path / "future.snap"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="format version"):
            load_snapshot(str(path))

    def test_truncated_arrays(self, tmp_path, snap_path):
        data = open(snap_path, "rb").read()
        path = tmp_path / "trunc.snap"
        path.write_bytes(data[:-16])
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    def test_flipped_payload_bit_fails_checksum(self, tmp_path, snap_path):
        data = bytearray(open(snap_path, "rb").read())
        data[-5] ^= 0xFF  # inside the array section
        path = tmp_path / "rot.snap"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(str(path))

    def test_header_bit_rot_fails_checksum_even_when_json_stays_valid(
        self, tmp_path
    ):
        # A flipped character inside a vertex name keeps the header
        # perfectly parseable — only the payload checksum can catch it.
        graph = DbGraph.from_edges([("alpha", "a", "beta")])
        path = tmp_path / "named.snap"
        save_snapshot(IndexedGraph(graph), str(path))
        data = bytearray(path.read_bytes())
        index = data.index(b"alpha")
        data[index + 4] = ord("o")  # alpha -> alpho, still valid JSON
        rotted = tmp_path / "rotted.snap"
        rotted.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(str(rotted))

    def test_corrupt_header_json(self, tmp_path, snap_path):
        data = bytearray(open(snap_path, "rb").read())
        data[20] = 0xFF  # stomp the JSON header
        path = tmp_path / "badjson.snap"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    def test_unsupported_vertex_type_rejected_at_save(self, tmp_path):
        graph = DbGraph.from_edges([((1, 2), "a", (3, 4))])
        with pytest.raises(SnapshotError, match="ints or strings"):
            save_snapshot(IndexedGraph(graph), str(tmp_path / "t.snap"))

    def test_failed_save_leaves_no_partial_file(self, tmp_path):
        graph = DbGraph.from_edges([((1, 2), "a", (3, 4))])
        target = tmp_path / "t.snap"
        with pytest.raises(SnapshotError):
            save_snapshot(IndexedGraph(graph), str(target))
        assert not target.exists()

    def test_failed_replace_cleans_up_tmp_file(
        self, tmp_path, graph, monkeypatch
    ):
        import os as os_module

        import repro.service.snapshot as snap_module

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(snap_module.os, "replace", explode)
        target = tmp_path / "fail.snap"
        with pytest.raises(OSError, match="disk full"):
            save_snapshot(IndexedGraph(graph), str(target))
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []  # no orphan tmp files
        assert os_module.path.exists(str(tmp_path))

    def test_magic_constant_shape(self):
        assert len(MAGIC) == 8


class TestVersionMigration:
    """v1 snapshots (no reverse-CSR section) must still serve (ISSUE-4)."""

    @pytest.fixture
    def v1_path(self, tmp_path, graph):
        path = str(tmp_path / "legacy.snap")
        save_snapshot(IndexedGraph(graph), path, format_version=1)
        return path

    def test_v1_header_has_no_reverse_section(self, v1_path):
        info = snapshot_info(v1_path)
        assert info["format_version"] == 1

    def test_v1_loads_and_rebuilds_reverse_index(self, graph, v1_path):
        thawed = load_snapshot(v1_path)
        compiled = IndexedGraph(graph)
        # The reverse label CSR is rebuilt in memory from the forward
        # arrays and matches a fresh compile slice for slice.
        for label in sorted(compiled.labels()):
            assert list(thawed._rev_label_indptr[label]) == \
                list(compiled._rev_label_indptr[label])
            assert list(thawed._rev_label_sources[label]) == \
                list(compiled._rev_label_sources[label])

    def test_v1_and_v2_serve_identical_answers(
        self, graph, v1_path, snap_path
    ):
        queries = [
            ("a*", 0, 24), ("ab + ba", 3, 11), ("(aa)*", 5, 20),
            ("a*ba*", 2, 17), ("a*(bb^+ + eps)c*", 1, 22),
        ]
        v1_engine = QueryEngine(load_snapshot(v1_path))
        v2_engine = QueryEngine(load_snapshot(snap_path))
        for regex, source, target in queries:
            direct = solve_rspq(regex, graph, source, target)
            for engine in (v1_engine, v2_engine):
                result = engine.query(regex, source, target)
                assert result.found == direct.found, (regex, source)
                assert result.path == direct.path, (regex, source)
                assert result.strategy == direct.strategy, (regex, source)

    def test_v2_is_the_default_and_round_trips_reverse_csr(
        self, graph, snap_path
    ):
        assert snapshot_info(snap_path)["format_version"] == FORMAT_VERSION
        thawed = load_snapshot(snap_path)
        compiled = IndexedGraph(graph)
        for label in sorted(compiled.labels()):
            assert list(thawed._rev_label_sources[label]) == \
                list(compiled._rev_label_sources[label])

    def test_unsupported_write_version_rejected(self, tmp_path, graph):
        with pytest.raises(SnapshotError, match="format version"):
            save_snapshot(
                IndexedGraph(graph), str(tmp_path / "x.snap"),
                format_version=99,
            )

    def test_corrupt_reverse_section_rejected(self, tmp_path, graph):
        # Rewrite a v2 snapshot (rcsr_sources is its final array) with
        # a structurally wrong reverse-CSR manifest but a *valid*
        # checksum: the shape validation itself must catch it, not
        # just the CRC.
        import json
        import struct
        import zlib

        snap_path = str(tmp_path / "v2.snap")
        save_snapshot(IndexedGraph(graph), snap_path, format_version=2)
        data = bytearray(open(snap_path, "rb").read())
        (header_len,) = struct.unpack_from("<I", data, 12)
        header = json.loads(bytes(data[16:16 + header_len]).decode())
        arrays_start = 16 + header_len + 4
        # Drop one trailing int64 from the final array (rcsr_sources)
        # and shrink its manifest count to stay self-consistent.
        assert header["arrays"][-1][0] == "rcsr_sources"
        assert header["arrays"][-1][1] > 0
        header["arrays"][-1][1] -= 1
        new_header = json.dumps(
            header, separators=(",", ":")
        ).encode("utf-8")
        new_arrays = bytes(data[arrays_start:len(data) - 8])
        crc = zlib.crc32(new_arrays, zlib.crc32(new_header)) & 0xFFFFFFFF
        blob = b"".join((
            MAGIC,
            struct.pack("<I", snapshot_info(snap_path)["format_version"]),
            struct.pack("<I", len(new_header)),
            new_header,
            struct.pack("<I", crc),
            new_arrays,
        ))
        bad_path = str(tmp_path / "bad-rev.snap")
        with open(bad_path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(SnapshotError):
            load_snapshot(bad_path)

    def test_truncated_reverse_indptr_rejected(self, tmp_path, graph):
        # A v2 snapshot whose reverse indptr rows disagree with the
        # label count must fail shape validation even when the
        # checksum is intact.
        import json
        import struct
        import zlib

        path = str(tmp_path / "v2.snap")
        save_snapshot(IndexedGraph(graph), path)
        data = bytearray(open(path, "rb").read())
        (header_len,) = struct.unpack_from("<I", data, 12)
        header = json.loads(bytes(data[16:16 + header_len]).decode())
        arrays_start = 16 + header_len + 4
        names = [name for name, _count in header["arrays"]]
        index = names.index("rcsr_indptr")
        # Byte offset of rcsr_indptr inside the array section.
        offset = sum(count for _n, count in header["arrays"][:index]) * 8
        count = header["arrays"][index][1]
        header["arrays"][index][1] = count - 1
        section = bytes(data[arrays_start:])
        new_arrays = (
            section[:offset]
            + section[offset + 8:]
        )
        new_header = json.dumps(
            header, separators=(",", ":")
        ).encode("utf-8")
        crc = zlib.crc32(new_arrays, zlib.crc32(new_header)) & 0xFFFFFFFF
        blob = b"".join((
            MAGIC,
            struct.pack("<I", header["format_version"]),
            struct.pack("<I", len(new_header)),
            new_header,
            struct.pack("<I", crc),
            new_arrays,
        ))
        with open(path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(SnapshotError, match="reverse per-label CSR"):
            load_snapshot(path)

    def test_v1_snapshot_registers_and_serves(self, tmp_path, graph):
        from repro.service import GraphRegistry

        path = str(tmp_path / "legacy.snap")
        save_snapshot(IndexedGraph(graph), path, format_version=1)
        registry = GraphRegistry()
        entry = registry.register_snapshot("old", path)
        assert entry.stats.source == "snapshot"
        result = entry.engine.query("a*", 0, 10)
        direct = solve_rspq("a*", graph, 0, 10)
        assert result.found == direct.found
        assert result.path == direct.path


def _rewrite_snapshot(path, out_path, mutate):
    """Reassemble ``path`` after ``mutate(header, arrays_bytes)`` with a
    valid checksum, so shape validation — not the CRC — must object."""
    import json
    import zlib

    data = bytearray(open(path, "rb").read())
    (header_len,) = struct.unpack_from("<I", data, 12)
    header = json.loads(bytes(data[16:16 + header_len]).decode())
    arrays = bytes(data[16 + header_len + 4:])
    header, arrays = mutate(header, arrays)
    new_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(arrays, zlib.crc32(new_header)) & 0xFFFFFFFF
    with open(out_path, "wb") as handle:
        handle.write(b"".join((
            MAGIC,
            struct.pack("<I", header["format_version"]),
            struct.pack("<I", len(new_header)),
            new_header,
            struct.pack("<I", crc),
            arrays,
        )))
    return out_path


def _array_span(header, name):
    """(byte offset, byte length) of array ``name`` in the section."""
    offset = 0
    for array_name, count in header["arrays"]:
        if array_name == name:
            return offset, count * 8
        offset += count * 8
    raise AssertionError("no array %r in manifest" % name)


class TestFormatV3ReachabilityIndex:
    """v3 persists the reachability index; v1/v2 rebuild in memory."""

    def test_v3_is_the_default(self, snap_path):
        assert FORMAT_VERSION == 3
        assert snapshot_info(snap_path)["format_version"] == 3

    @pytest.mark.parametrize("legacy_version", [1, 2])
    def test_legacy_versions_load_and_rebuild_the_index(
        self, tmp_path, graph, legacy_version
    ):
        path = str(tmp_path / "legacy.snap")
        save_snapshot(IndexedGraph(graph), path,
                      format_version=legacy_version)
        assert snapshot_info(path)["format_version"] == legacy_version
        thawed = load_snapshot(path)
        compiled = IndexedGraph(graph)
        # Index rebuilt in memory ≡ fresh compile.
        t_comp, t_n, t_edges = thawed.reach_parts()
        c_comp, c_n, c_edges = compiled.reach_parts()
        assert list(t_comp) == list(c_comp)
        assert t_n == c_n
        assert t_edges == c_edges

    def test_v3_round_trips_the_index_without_recondensing(
        self, graph, snap_path
    ):
        thawed = load_snapshot(snap_path)
        # The parts were thawed, not recomputed lazily.
        assert thawed._reach_parts is not None
        compiled = IndexedGraph(graph)
        assert list(thawed.reach_parts()[0]) == (
            list(compiled.reach_parts()[0])
        )

    def test_all_versions_serve_identical_answers(self, tmp_path, graph):
        engines = []
        for version in (1, 2, 3):
            path = str(tmp_path / ("v%d.snap" % version))
            save_snapshot(IndexedGraph(graph), path, format_version=version)
            engines.append(QueryEngine(load_snapshot(path)))
        queries = [
            ("a*", 0, 24), ("ab + ba", 3, 11), ("(aa)*", 5, 20),
            ("a*ba*", 2, 17),
        ]
        for regex, source, target in queries:
            direct = solve_rspq(regex, graph, source, target)
            for engine in engines:
                result = engine.query(regex, source, target)
                assert result.found == direct.found, (regex, source)
                assert result.path == direct.path, (regex, source)

    def test_comp_out_of_range_rejected(self, tmp_path, snap_path):
        def mutate(header, arrays):
            offset, length = _array_span(header, "scc_comp_of")
            assert length > 0
            bad = struct.pack("<q", header["num_comps"])  # one past range
            return header, arrays[:offset] + bad + arrays[offset + 8:]

        bad_path = _rewrite_snapshot(
            snap_path, str(tmp_path / "bad-comp.snap"), mutate
        )
        with pytest.raises(SnapshotError, match="component"):
            load_snapshot(bad_path)

    def test_truncated_comp_of_rejected(self, tmp_path, snap_path):
        def mutate(header, arrays):
            offset, length = _array_span(header, "scc_comp_of")
            index = [n for n, _c in header["arrays"]].index("scc_comp_of")
            header["arrays"][index][1] -= 1
            return header, arrays[:offset] + arrays[offset + 8:]

        bad_path = _rewrite_snapshot(
            snap_path, str(tmp_path / "short-comp.snap"), mutate
        )
        with pytest.raises(SnapshotError, match="reachability"):
            load_snapshot(bad_path)

    def test_mismatched_edge_arrays_rejected(self, tmp_path, snap_path):
        def mutate(header, arrays):
            offset, length = _array_span(header, "scc_edge_targets")
            assert length > 0
            index = [
                n for n, _c in header["arrays"]
            ].index("scc_edge_targets")
            header["arrays"][index][1] -= 1
            return header, arrays[:offset] + arrays[offset + 8:]

        bad_path = _rewrite_snapshot(
            snap_path, str(tmp_path / "bad-edges.snap"), mutate
        )
        with pytest.raises(SnapshotError, match="edge arrays"):
            load_snapshot(bad_path)

    def test_bad_num_comps_header_rejected(self, tmp_path, snap_path):
        def mutate(header, arrays):
            header["num_comps"] = -1
            return header, arrays

        bad_path = _rewrite_snapshot(
            snap_path, str(tmp_path / "bad-ncomps.snap"), mutate
        )
        with pytest.raises(SnapshotError, match="num_comps"):
            load_snapshot(bad_path)

    def test_edge_violating_topological_numbering_rejected(
        self, tmp_path, snap_path
    ):
        # Every legitimate condensation edge points to a strictly
        # smaller component id (Tarjan's reverse-topological
        # numbering); the closure pass depends on it, so a violating
        # edge must fail the load rather than silently corrupt
        # reachability answers.
        def mutate(header, arrays):
            src_off, src_len = _array_span(header, "scc_edge_sources")
            dst_off, dst_len = _array_span(header, "scc_edge_targets")
            assert src_len > 0
            (source_comp,) = struct.unpack_from("<q", arrays, src_off)
            bad = struct.pack("<q", source_comp)  # self/forward edge
            return header, (
                arrays[:dst_off] + bad + arrays[dst_off + 8:]
            )

        bad_path = _rewrite_snapshot(
            snap_path, str(tmp_path / "bad-topo.snap"), mutate
        )
        with pytest.raises(SnapshotError, match="reverse-topological"):
            load_snapshot(bad_path)

    def test_edge_label_out_of_range_rejected(self, tmp_path, snap_path):
        def mutate(header, arrays):
            offset, length = _array_span(header, "scc_edge_labels")
            assert length > 0
            bad = struct.pack("<q", len(header["labels"]))
            return header, arrays[:offset] + bad + arrays[offset + 8:]

        bad_path = _rewrite_snapshot(
            snap_path, str(tmp_path / "bad-label.snap"), mutate
        )
        with pytest.raises(SnapshotError, match="label id"):
            load_snapshot(bad_path)

    def test_flipped_index_bit_fails_the_checksum(self, tmp_path,
                                                  snap_path):
        data = bytearray(open(snap_path, "rb").read())
        data[-4] ^= 0x10  # inside the v3 tail section
        bad_path = str(tmp_path / "rot.snap")
        with open(bad_path, "wb") as handle:
            handle.write(data)
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(bad_path)

    def test_v3_thawed_engine_short_circuits(self, tmp_path):
        graph = DbGraph()
        graph.add_edge(0, "a", 1)
        graph.add_vertex(5)
        path = str(tmp_path / "island.snap")
        save_snapshot(IndexedGraph(graph), path)
        engine = QueryEngine(load_snapshot(path))
        result = engine.query("a*", 0, 5)
        assert result.found is False
        assert result.stats.short_circuit is True


class TestAttachSnapshot:
    """Zero-copy attach: mmapped views, path pickling, reach reuse."""

    def test_attached_graph_answers_identically(self, graph, snap_path):
        from repro.service.snapshot import attach_snapshot

        attached = attach_snapshot(snap_path)
        compiled = IndexedGraph(graph)
        assert list(attached.vertices()) == list(compiled.vertices())
        assert attached.num_edges == compiled.num_edges
        queries = [
            ("a*", 0, 24), ("ab + ba", 3, 11), ("(aa)*", 5, 20),
            ("a*ba*", 2, 17), ("a*(bb^+ + eps)c*", 0, 5),
        ]
        engine = QueryEngine(attached)
        for regex, source, target in queries:
            direct = solve_rspq(regex, graph, source, target)
            served = engine.query(regex, source, target)
            assert served.found == direct.found, (regex, source)
            assert served.path == direct.path, (regex, source)

    def test_attached_views_are_zero_copy(self, snap_path):
        from repro.service.snapshot import attach_snapshot

        attached = attach_snapshot(snap_path)
        view = attached.view()
        indptr, labels, targets = view._raw_out
        # Every CSR array is a cast of the one mmap — no copies.
        for raw in (indptr, labels, targets):
            assert isinstance(raw, memoryview)
            assert raw.obj is attached._mapping
        for label_arrays in (
            attached._label_indptr, attached._label_targets,
        ):
            for raw in label_arrays.values():
                assert raw.obj is attached._mapping

    def test_attached_adjacency_matches_loaded(self, graph, snap_path):
        from repro.service.snapshot import attach_snapshot

        attached = attach_snapshot(snap_path)
        loaded = load_snapshot(snap_path)
        for vertex in loaded.vertices():
            assert attached.sorted_out_edges(vertex) == (
                loaded.sorted_out_edges(vertex)
            )
            assert list(attached.in_edges(vertex)) == (
                list(loaded.in_edges(vertex))
            )
            assert attached.out_degree(vertex) == loaded.out_degree(vertex)
            assert attached.in_degree(vertex) == loaded.in_degree(vertex)

    def test_attach_missing_or_empty_file_raises(self, tmp_path):
        from repro.service.snapshot import attach_snapshot

        with pytest.raises(SnapshotError):
            attach_snapshot(str(tmp_path / "absent.snap"))
        empty = tmp_path / "empty.snap"
        empty.write_bytes(b"")
        with pytest.raises(SnapshotError, match="empty"):
            attach_snapshot(str(empty))


class TestSnapshotPickleByPath:
    """Snapshot-backed graphs pickle as a path, not as CSR arrays."""

    def test_pickle_ships_path_not_arrays(self, graph, snap_path):
        import pickle

        loaded = load_snapshot(snap_path)
        by_path = pickle.dumps(loaded)
        # The path spec is a few dozen bytes; a full-state pickle of
        # this graph is tens of kilobytes.  The margin is the
        # regression guard: re-serialised CSR arrays cannot fit.
        assert len(by_path) < 2048
        plain = IndexedGraph(graph)
        assert len(pickle.dumps(plain)) > 4 * len(by_path)
        clone = pickle.loads(by_path)
        assert list(clone.vertices()) == list(loaded.vertices())
        assert clone.num_edges == loaded.num_edges

    def test_unpickled_clone_is_attached_and_shared(self, snap_path):
        import pickle

        from repro.service.snapshot import AttachedGraph

        loaded = load_snapshot(snap_path)
        first = pickle.loads(pickle.dumps(loaded))
        second = pickle.loads(pickle.dumps(loaded))
        assert isinstance(first, AttachedGraph)
        # The process-local attach cache maps (path, crc) to one graph.
        assert first is second

    def test_pickle_falls_back_to_full_state_when_file_gone(
        self, graph, snap_path
    ):
        import os
        import pickle

        loaded = load_snapshot(snap_path)
        os.unlink(snap_path)
        blob = pickle.dumps(loaded)
        assert len(blob) > 2048  # full arrays, self-contained
        clone = pickle.loads(blob)
        compiled = IndexedGraph(graph)
        for vertex in compiled.vertices():
            assert clone.sorted_out_edges(vertex) == (
                compiled.sorted_out_edges(vertex)
            )

    def test_process_mode_batch_over_snapshot_engine(self, graph,
                                                     snap_path):
        engine = QueryEngine(load_snapshot(snap_path))
        queries = [
            ("a*", 0, 24), ("ab + ba", 3, 11), ("(aa)*", 5, 20),
            ("a*ba*", 2, 17),
        ]
        batch = engine.run_batch(queries, mode="process", workers=2)
        for (regex, source, target), result in zip(queries, batch.results):
            direct = solve_rspq(regex, graph, source, target)
            assert result.found == direct.found
            assert result.path == direct.path


class TestCondensationReuse:
    """save -> load reuses the already-compiled condensation object."""

    def test_load_after_save_shares_reach_parts_identity(
        self, tmp_path, graph
    ):
        compiled = IndexedGraph(graph)
        path = str(tmp_path / "reuse.snap")
        save_snapshot(compiled, path)  # v3 computes reach_parts()
        loaded = load_snapshot(path)
        assert loaded.reach_parts() is compiled.reach_parts()

    def test_reuse_is_skipped_when_file_rewritten(self, tmp_path):
        first = IndexedGraph(random_labeled_graph(10, 30, "ab", seed=1))
        second = IndexedGraph(random_labeled_graph(12, 40, "ab", seed=2))
        path = str(tmp_path / "rewrite.snap")
        save_snapshot(first, path)
        save_snapshot(second, path)  # same path, different CRC
        loaded = load_snapshot(path)
        assert loaded.reach_parts() is not first.reach_parts()
        assert list(loaded.reach_parts()[0]) == (
            list(second.reach_parts()[0])
        )
