"""Unit tests for the regex builder combinators."""

from repro.languages import language
from repro.languages.regex import ast as rx
from repro.languages.regex import builder as b


class TestNormalisation:
    def test_word_empty_is_epsilon(self):
        assert b.word("") == rx.Epsilon()

    def test_word_single_letter(self):
        assert b.word("a") == rx.Literal("a")

    def test_concat_drops_epsilon(self):
        assert b.concat(b.word("a"), b.epsilon(), b.word("b")) == b.word("ab")

    def test_concat_with_empty_is_empty(self):
        assert b.concat(b.word("a"), b.empty()) == rx.Empty()

    def test_concat_flattens(self):
        nested = b.concat(b.word("ab"), b.word("cd"))
        assert nested == b.word("abcd")

    def test_union_deduplicates(self):
        assert b.union(b.word("a"), b.word("a")) == rx.Literal("a")

    def test_union_drops_empty(self):
        assert b.union(b.word("a"), b.empty()) == rx.Literal("a")

    def test_union_of_nothing_is_empty(self):
        assert b.union() == rx.Empty()

    def test_star_of_epsilon(self):
        assert b.star(b.epsilon()) == rx.Epsilon()

    def test_star_idempotent(self):
        inner = b.star(b.word("a"))
        assert b.star(inner) == inner

    def test_optional_of_star_is_star(self):
        inner = b.star(b.word("a"))
        assert b.optional(inner) == inner

    def test_char_class_singleton(self):
        assert b.char_class("a") == rx.Literal("a")

    def test_repeat_zero_zero(self):
        assert b.repeat(b.word("a"), 0, 0) == rx.Epsilon()

    def test_at_least(self):
        node = b.at_least("ab", 2)
        assert node == rx.Repeat(rx.CharClass(("a", "b")), 2, None)


class TestSemantics:
    """Built expressions must denote the same language as parsed ones."""

    def test_at_least_language(self):
        built = language(b.at_least("a", 2))
        parsed = language("aa a*".replace(" ", ""))
        assert built.equivalent(parsed)

    def test_union_concat_language(self):
        built = language(
            b.concat(b.star(b.word("a")), b.optional(b.word("b")))
        )
        parsed = language("a*(b + eps)")
        assert built.equivalent(parsed)
