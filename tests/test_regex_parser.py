"""Unit tests for the regex parser (paper dialect)."""

import pytest

from repro.errors import RegexSyntaxError
from repro.languages.regex import ast as rx
from repro.languages.regex.parser import parse


class TestAtoms:
    def test_single_letter(self):
        assert parse("a") == rx.Literal("a")

    def test_epsilon_word(self):
        assert parse("eps") == rx.Epsilon()

    def test_epsilon_symbol(self):
        assert parse("ε") == rx.Epsilon()

    def test_empty_language(self):
        assert parse("∅") == rx.Empty()

    def test_empty_string_is_epsilon(self):
        assert parse("") == rx.Epsilon()

    def test_digit_literal(self):
        assert parse("0") == rx.Literal("0")

    def test_char_class(self):
        assert parse("[ab]") == rx.CharClass(("a", "b"))

    def test_char_class_is_sorted_and_deduplicated(self):
        assert parse("[bab]") == rx.CharClass(("a", "b"))


class TestOperators:
    def test_concatenation(self):
        assert parse("abc") == rx.Concat(
            (rx.Literal("a"), rx.Literal("b"), rx.Literal("c"))
        )

    def test_union_plus(self):
        assert parse("a + b") == rx.Union((rx.Literal("a"), rx.Literal("b")))

    def test_union_bar(self):
        assert parse("a|b") == rx.Union((rx.Literal("a"), rx.Literal("b")))

    def test_star(self):
        assert parse("a*") == rx.Star(rx.Literal("a"))

    def test_optional(self):
        assert parse("a?") == rx.Optional(rx.Literal("a"))

    def test_explicit_postfix_plus(self):
        assert parse("a^+") == rx.Plus(rx.Literal("a"))

    def test_trailing_plus_is_postfix(self):
        assert parse("ab+") == rx.Concat(
            (rx.Literal("a"), rx.Plus(rx.Literal("b")))
        )

    def test_plus_before_union_is_postfix(self):
        # The paper's "bb+ + ε" idiom.
        node = parse("bb+ + eps")
        assert node == rx.Union(
            (
                rx.Concat((rx.Literal("b"), rx.Plus(rx.Literal("b")))),
                rx.Epsilon(),
            )
        )

    def test_infix_plus_is_union(self):
        assert parse("a+b") == rx.Union((rx.Literal("a"), rx.Literal("b")))

    def test_plus_before_close_paren_is_postfix(self):
        # Groups keep their own Concat node (no flattening in the parser).
        assert parse("(ab+)c") == rx.Concat(
            (
                rx.Concat((rx.Literal("a"), rx.Plus(rx.Literal("b")))),
                rx.Literal("c"),
            )
        )


class TestBounds:
    def test_exact_repeat(self):
        assert parse("a{3}") == rx.Repeat(rx.Literal("a"), 3, 3)

    def test_range_repeat(self):
        assert parse("a{2,5}") == rx.Repeat(rx.Literal("a"), 2, 5)

    def test_open_repeat(self):
        assert parse("a{2,}") == rx.Repeat(rx.Literal("a"), 2, None)

    def test_at_least_ascii(self):
        assert parse("[ab]>=3") == rx.Repeat(rx.CharClass(("a", "b")), 3, None)

    def test_at_least_unicode(self):
        assert parse("a≥2") == rx.Repeat(rx.Literal("a"), 2, None)


class TestPaperLanguages:
    """The expressions the paper uses must all parse."""

    @pytest.mark.parametrize(
        "text",
        [
            "(aa)*",
            "a*ba*",
            "a*bc*",
            "a*(bb+ + ε)c*",
            "a*b(cc)*d",
            "a(c{2,} + eps)(a+b)*(ac)?a*",
            "(0+1)*a*ba* + 0a*",
        ],
    )
    def test_parses(self, text):
        node = parse(text)
        assert isinstance(node, rx.RegexNode)

    def test_roundtrip_through_str(self):
        for text in ["a*ba*", "a*(bb+ + eps)c*", "a*b(cc)*d", "[ab]{2,}"]:
            node = parse(text)
            assert parse(str(node)) == node


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["(a", "a)", "[", "[]", "a{", "a{2", "a{5,2}", "*a", "a>=", "a{x}"],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(RegexSyntaxError):
            parse(text)

    def test_non_string_input(self):
        with pytest.raises(RegexSyntaxError):
            parse(42)

    def test_error_carries_position(self):
        try:
            parse("a)")
        except RegexSyntaxError as err:
            assert err.position is not None
        else:  # pragma: no cover
            raise AssertionError("expected a syntax error")
