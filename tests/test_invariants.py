"""Tests for the invariant analyzer in tools/invariants.

Covers: each rule flags its seeded-violation fixture, the analyzer runs
clean on the real source tree (meta-test), the CLI exit-code contract,
JSON output shape, and the suppression-comment syntax.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
FIXTURES = TOOLS_DIR / "invariants" / "fixtures"
RUN_PY = TOOLS_DIR / "invariants" / "run.py"

sys.path.insert(0, str(TOOLS_DIR))

from invariants.engine import ALL_RULES, run_analysis  # noqa: E402

SNAPSHOT_FP = TOOLS_DIR / "invariants" / "snapshot_layout.json"
ANNOTATIONS_BASELINE = TOOLS_DIR / "invariants" / "annotations_baseline.txt"


def analyze(paths, rules=None, snapshot_fp=SNAPSHOT_FP):
    violations, _project = run_analysis(
        [Path(p) for p in paths],
        root=REPO_ROOT,
        rule_names=rules,
        snapshot_fingerprint=snapshot_fp,
        annotations_baseline=ANNOTATIONS_BASELINE,
    )
    return violations


def run_cli(*args):
    return subprocess.run(
        [sys.executable, str(RUN_PY), *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


# ---------------------------------------------------------------------------
# Per-rule fixture tests: every rule must flag its seeded violation.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "rule",
    [
        "lock-discipline",
        "solver-purity",
        "hot-loop",
        "snapshot-readonly",
        "protocol-drift",
        "api-types",
        "fault-gate",
    ],
)
def test_rule_flags_its_fixture(rule):
    fixture = FIXTURES / ("fixture_%s.py" % rule.replace("-", "_"))
    violations = analyze([fixture], rules=[rule])
    assert violations, "expected %s to flag %s" % (rule, fixture.name)
    assert all(v.rule == rule for v in violations)


def test_snapshot_rule_flags_missing_fingerprint(tmp_path):
    fixture = FIXTURES / "fixture_snapshot_layout.py"
    violations = analyze(
        [fixture],
        rules=["snapshot-layout"],
        snapshot_fp=tmp_path / "absent.json",
    )
    assert len(violations) == 1
    assert "no committed layout fingerprint" in violations[0].message


def test_snapshot_rule_flags_change_without_version_bump(tmp_path):
    fixture = FIXTURES / "fixture_snapshot_layout.py"
    stale = tmp_path / "fp.json"
    stale.write_text(json.dumps({"format_version": 1, "fingerprint": "0" * 64}))
    violations = analyze([fixture], rules=["snapshot-layout"], snapshot_fp=stale)
    assert len(violations) == 1
    assert "FORMAT_VERSION is still 1" in violations[0].message


def test_lock_fixture_message_names_attribute():
    fixture = FIXTURES / "fixture_lock_discipline.py"
    (violation,) = analyze([fixture], rules=["lock-discipline"])
    assert "_entries" in violation.message
    assert violation.line == 19


def test_snapshot_readonly_fixture_reports_all_shapes():
    fixture = FIXTURES / "fixture_snapshot_readonly.py"
    violations = analyze([fixture], rules=["snapshot-readonly"])
    assert len(violations) == 5
    messages = "\n".join(v.message for v in violations)
    assert "store into a subscript" in messages
    assert "del of a subscript" in messages
    assert "in-place byteswap()" in messages
    assert "held snapshot mapping" in messages


def test_purity_fixture_reports_all_three_shapes():
    fixture = FIXTURES / "fixture_solver_purity.py"
    messages = "\n".join(v.message for v in analyze([fixture], rules=["solver-purity"]))
    assert "module-level mutable state" in messages
    assert "ExecutionContext" in messages
    assert "instance state" in messages


# ---------------------------------------------------------------------------
# Meta-test: the real source tree is invariant-clean.
# ---------------------------------------------------------------------------


def test_source_tree_is_clean():
    violations = analyze([REPO_ROOT / "src" / "repro"])
    assert violations == [], "\n".join(str(v) for v in violations)


# ---------------------------------------------------------------------------
# Suppression and scope directives.
# ---------------------------------------------------------------------------


def test_allow_comment_suppresses_violation(tmp_path):
    mod = tmp_path / "suppressed.py"
    mod.write_text(
        "# invariant-scope: api-types\n"
        "def untyped(value):  # invariant: allow=api-types\n"
        "    return value\n"
    )
    assert analyze([mod], rules=["api-types"]) == []


def test_scope_directive_pulls_file_into_rule(tmp_path):
    mod = tmp_path / "plain.py"
    mod.write_text("def untyped(value):\n    return value\n")
    # Without a scope directive an out-of-tree file is not checked.
    assert analyze([mod], rules=["api-types"]) == []
    mod.write_text(
        "# invariant-scope: api-types\n"
        "def untyped(value):\n"
        "    return value\n"
    )
    assert len(analyze([mod], rules=["api-types"])) == 1


def test_syntax_error_reported_as_parse_violation(tmp_path):
    mod = tmp_path / "broken.py"
    mod.write_text("def broken(:\n")
    violations = analyze([mod])
    assert len(violations) == 1
    assert violations[0].rule == "parse-error"


# ---------------------------------------------------------------------------
# CLI contract: exit codes, --json, --list-rules.
# ---------------------------------------------------------------------------


def test_cli_exits_zero_on_source_tree():
    proc = run_cli("src/repro")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violations" in proc.stdout


def test_cli_exits_one_on_each_fixture():
    for fixture in sorted(FIXTURES.glob("fixture_*.py")):
        if fixture.name == "fixture_snapshot_layout.py":
            proc = run_cli(
                str(fixture), "--snapshot-fingerprint", "/nonexistent/fp.json"
            )
        else:
            proc = run_cli(str(fixture))
        assert proc.returncode == 1, "%s: %s" % (fixture.name, proc.stdout)


def test_cli_json_output_shape():
    proc = run_cli(str(FIXTURES / "fixture_api_types.py"), "--json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["checked_files"] == 1
    assert len(payload["rules"]) == 8
    (record,) = payload["violations"]
    assert record["rule"] == "api-types"
    assert record["path"].endswith("fixture_api_types.py")
    assert isinstance(record["line"], int)
    assert "missing annotations" in record["message"]


def test_cli_list_rules_covers_all_eight():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in ALL_RULES:
        assert rule.name in proc.stdout
    assert len(ALL_RULES) == 8


def test_cli_unknown_rule_is_usage_error():
    proc = run_cli("src/repro", "--rule", "no-such-rule")
    assert proc.returncode == 2
