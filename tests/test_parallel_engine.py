"""Concurrency properties of the engine: shared frozen plans, parallel
batches, single-flight compilation, per-query context isolation.

The core property: ``run_batch(queries, workers=N)`` is
**observationally identical** to serial execution — same paths, same
strategies, same per-query step counters (which would differ if two
queries ever bled counters through a shared solver).
"""

import threading

import pytest

from benchmarks.workloads import (
    MIXED_LANGUAGES,
    distinct_languages,
    mixed_workload,
)

from repro.engine import QueryEngine
from repro.errors import GraphError

WORKERS = 4


@pytest.fixture(scope="module")
def workload():
    """Mixed-regime workload with a hot language on every 2nd query."""
    return mixed_workload(
        num_queries=60,
        seed=5,
        num_vertices=24,
        num_edges=70,
        hot_language="a*(bb^+ + eps)c*",
        hot_every=2,
    )


class TestParallelMatchesSerial:
    def test_paths_strategies_and_steps_identical(self, workload):
        graph, queries = workload
        serial = QueryEngine(graph).run_batch(queries)
        parallel = QueryEngine(graph).run_batch(queries, workers=WORKERS)
        assert len(parallel) == len(queries)
        for reference, result in zip(serial.results, parallel.results):
            assert result.found == reference.found
            assert result.path == reference.path
            assert result.strategy == reference.strategy
            # Step counters are deterministic per query; equality means
            # no cross-query counter bleed through the shared plans.
            assert result.stats.steps == reference.stats.steps

    def test_process_mode_identical(self, workload):
        graph, queries = workload
        serial = QueryEngine(graph).run_batch(queries)
        parallel = QueryEngine(graph).run_batch(
            queries, workers=2, mode="process"
        )
        for reference, result in zip(serial.results, parallel.results):
            assert result.path == reference.path
            assert result.strategy == reference.strategy
            assert result.stats.steps == reference.stats.steps

    def test_results_keep_input_order(self, workload):
        graph, queries = workload
        batch = QueryEngine(graph).run_batch(queries, workers=WORKERS)
        assert [
            (result.language, result.source, result.target)
            for result in batch.results
        ] == queries


class TestSingleFlightCompilation:
    def test_distinct_languages_compiled_exactly_once(self, workload):
        graph, queries = workload
        engine = QueryEngine(graph)
        batch = engine.run_batch(queries, workers=WORKERS)
        assert batch.cache_stats.compiles == len(
            distinct_languages(queries)
        )
        assert batch.cache_stats.evictions == 0

    def test_hot_language_contention(self, workload):
        graph, _queries = workload
        vertices = list(graph.vertices())
        # Every worker hammers the same cold language at the same time.
        queries = [
            ("a*(bb^+ + eps)c*", vertices[i % len(vertices)],
             vertices[(i + 7) % len(vertices)])
            for i in range(40)
        ]
        engine = QueryEngine(graph)
        batch = engine.run_batch(queries, workers=WORKERS)
        assert batch.cache_stats.compiles == 1
        assert batch.error_count == 0

    def test_stats_sanity(self, workload):
        graph, queries = workload
        engine = QueryEngine(graph)
        batch = engine.run_batch(queries, workers=WORKERS)
        stats = batch.cache_stats
        assert stats.lookups == stats.hits + stats.misses
        assert stats.hits + stats.compiles >= len(queries)
        assert all(result.stats.seconds >= 0 for result in batch.results)
        assert batch.error_count == 0
        assert engine.cache_stats().compiles == stats.compiles

    def test_concurrent_query_calls_share_one_plan(self, workload):
        """Raw engine.query from many threads: one compile, no errors."""
        graph, _queries = workload
        engine = QueryEngine(graph)
        vertices = list(graph.vertices())
        errors = []
        barrier = threading.Barrier(WORKERS)

        def hammer(offset):
            try:
                barrier.wait(timeout=10)
                for i in range(10):
                    engine.query(
                        "b*c*",
                        vertices[(offset + i) % len(vertices)],
                        vertices[(offset + 3 * i + 1) % len(vertices)],
                    )
            except Exception as err:  # pragma: no cover - failure path
                errors.append(err)

        threads = [
            threading.Thread(target=hammer, args=(offset,))
            for offset in range(WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert engine.cache_stats().compiles == 1


class TestParallelErrorIsolation:
    def test_bad_queries_isolated_across_workers(self, workload):
        graph, queries = workload
        poisoned = list(queries)
        poisoned[3] = ("a*", "missing-vertex", poisoned[3][2])
        poisoned[17] = ("((((", poisoned[17][1], poisoned[17][2])
        serial = QueryEngine(graph).run_batch(poisoned)
        parallel = QueryEngine(graph).run_batch(poisoned, workers=WORKERS)
        assert parallel.error_count == serial.error_count == 2
        for reference, result in zip(serial.results, parallel.results):
            assert (result.error is None) == (reference.error is None)
            assert result.path == reference.path

    def test_single_query_api_still_raises_in_parallel_engine(
        self, workload
    ):
        graph, _queries = workload
        engine = QueryEngine(graph)
        engine.run_batch(
            [("a*", 0, 1)], workers=2
        )  # engine has served a parallel batch
        with pytest.raises(GraphError):
            engine.query("a*", "nope", 1)


class TestRunBatchArguments:
    def test_rejects_zero_workers(self, workload):
        graph, queries = workload
        with pytest.raises(ValueError):
            QueryEngine(graph).run_batch(queries, workers=0)

    def test_rejects_unknown_mode(self, workload):
        graph, queries = workload
        with pytest.raises(ValueError):
            QueryEngine(graph).run_batch(queries, mode="fiber")

    def test_workers_clamped_to_queries(self, workload):
        graph, _queries = workload
        batch = QueryEngine(graph).run_batch(
            [("a*", 0, 1)], workers=WORKERS
        )
        assert batch.workers == 1
        assert len(batch) == 1

    def test_empty_batch(self, workload):
        graph, _queries = workload
        batch = QueryEngine(graph).run_batch([], workers=WORKERS)
        assert len(batch) == 0
        assert batch.cache_stats.compiles == 0

    def test_workload_generator_is_deterministic(self):
        first = mixed_workload(num_queries=20, seed=9)
        second = mixed_workload(num_queries=20, seed=9)
        assert first[1] == second[1]
        assert list(first[0].edges()) == list(second[0].edges())
        assert distinct_languages(first[1]) <= set(MIXED_LANGUAGES)
