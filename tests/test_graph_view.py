"""Unit tests for the GraphView layer (graphs/view.py + engine CsrView).

The contract under test: both view backends assign vertex ids in the
same repr-sorted order, iterate adjacency in the same precompiled repr
order, and therefore feed the solver cores bit-identical inputs — the
property the CSR-vs-DbGraph differential suite relies on.
"""

import pickle

import pytest

from repro.engine.indexed import CsrView, IndexedGraph
from repro.errors import GraphError
from repro.graphs.generators import random_labeled_graph
from repro.graphs.view import DbGraphView, GraphView, as_graph_view


@pytest.fixture
def graph():
    return random_labeled_graph(18, 60, "abc", seed=7)


@pytest.fixture
def views(graph):
    return DbGraphView(graph), IndexedGraph(graph).view()


class TestViewEquivalence:
    def test_kinds(self, views):
        dict_view, csr_view = views
        assert dict_view.kind == "dict"
        assert csr_view.kind == "csr"
        assert isinstance(csr_view, CsrView)
        assert isinstance(csr_view, GraphView)

    def test_vertex_tables_match(self, graph, views):
        dict_view, csr_view = views
        order = list(graph.vertices())  # repr-sorted
        for view in views:
            assert [view.vertex_at(i) for i in range(view.num_vertices)] \
                == order
            for index, vertex in enumerate(order):
                assert view.vertex_id(vertex) == index

    def test_label_tables_match(self, graph, views):
        expected = sorted(graph.labels())
        for view in views:
            assert list(view._label_of) == expected
            for index, label in enumerate(expected):
                assert view.label_id(label) == index
                assert view.label_at(index) == label
            assert view.label_id("zz") is None

    def test_out_pairs_identical_across_views(self, views):
        dict_view, csr_view = views
        for vertex_id in range(dict_view.num_vertices):
            assert list(dict_view.out(vertex_id)) == \
                list(csr_view.out(vertex_id))
            assert dict_view.out_degree(vertex_id) == \
                csr_view.out_degree(vertex_id)

    def test_label_partitioned_adjacency_identical(self, views):
        dict_view, csr_view = views
        for vertex_id in range(dict_view.num_vertices):
            for label_id in range(dict_view.num_labels):
                assert list(dict_view.out_by_label(vertex_id, label_id)) \
                    == list(csr_view.out_by_label(vertex_id, label_id))
                assert sorted(dict_view.in_by_label(vertex_id, label_id)) \
                    == sorted(csr_view.in_by_label(vertex_id, label_id))
            assert sorted(dict_view.in_pairs(vertex_id)) == \
                sorted(csr_view.in_pairs(vertex_id))

    def test_out_by_label_matches_mask_filtered_out(self, views):
        for view in views:
            for vertex_id in range(view.num_vertices):
                for label_id in range(view.num_labels):
                    filtered = [
                        target
                        for edge_label, target in view.out(vertex_id)
                        if edge_label == label_id
                    ]
                    assert list(view.out_by_label(vertex_id, label_id)) \
                        == filtered

    def test_reverse_csr_transposes_forward(self, views):
        _dict_view, csr_view = views
        for label_id in range(csr_view.num_labels):
            forward = {
                (source, target)
                for source in range(csr_view.num_vertices)
                for target in csr_view.out_by_label(source, label_id)
            }
            backward = {
                (source, target)
                for target in range(csr_view.num_vertices)
                for source in csr_view.in_by_label(target, label_id)
            }
            assert forward == backward

    def test_none_label_is_empty(self, views):
        for view in views:
            assert tuple(view.out_by_label(0, None)) == ()
            assert tuple(view.in_by_label(0, None)) == ()

    def test_label_masks_and_word_ids(self, views):
        for view in views:
            a = view.label_id("a")
            b = view.label_id("b")
            assert view.label_mask("ab") == (1 << a) | (1 << b)
            assert view.label_mask("zq") == 0
            assert view.word_label_ids("az") == (a, None)

    def test_path_materialisation(self, graph, views):
        source, label, target = next(iter(graph.edges()))
        for view in views:
            path = view.path(
                (view.vertex_id(source), view.vertex_id(target)),
                (view.label_id(label),),
            )
            assert path.vertices == (source, target)
            assert path.labels == (label,)

    def test_unknown_vertex_raises_graph_error(self, views):
        for view in views:
            with pytest.raises(GraphError, match="unknown vertex"):
                view.vertex_id("no-such-vertex")


class TestAsGraphView:
    def test_identity_on_views(self, views):
        for view in views:
            assert as_graph_view(view) is view

    def test_dbgraph_view_is_cached_per_mutation(self, graph):
        first = as_graph_view(graph)
        assert isinstance(first, DbGraphView)
        assert as_graph_view(graph) is first
        graph.add_edge("brand-new", "a", next(iter(graph.vertices())))
        second = as_graph_view(graph)
        assert second is not first
        assert "brand-new" in second._id_of
        assert "brand-new" not in first._id_of

    def test_indexed_graph_view_is_cached(self, graph):
        indexed = IndexedGraph(graph)
        assert as_graph_view(indexed) is indexed.view()
        assert indexed.view() is indexed.view()

    def test_duck_typed_graph_falls_back_to_dict_view(self, graph):
        class Duck:
            """Minimal read API, vertices deliberately unsorted."""

            def vertices(self):
                return ["b", "a", "c"]

            def labels(self):
                return {"x"}

            def out_edges(self, vertex):
                return [("x", "a")] if vertex == "b" else []

            def in_edges(self, vertex):
                return [("x", "b")] if vertex == "a" else []

            def successors(self, vertex, label=None):
                return {
                    target
                    for edge_label, target in self.out_edges(vertex)
                    if edge_label == label
                }

            def out_degree(self, vertex):
                return len(self.out_edges(vertex))

        view = as_graph_view(Duck())
        assert view.kind == "dict"
        # Ids follow repr-sorted order even for unsorted duck graphs.
        assert [view.vertex_at(i) for i in range(3)] == ["a", "b", "c"]
        assert list(view.out(view.vertex_id("b"))) == [(0, 0)]


class TestCsrViewLifecycle:
    def test_snapshot_thaw_view_matches_compiled_view(self, graph, tmp_path):
        from repro.service.snapshot import load_snapshot, save_snapshot

        compiled = IndexedGraph(graph)
        path = str(tmp_path / "g.snap")
        save_snapshot(compiled, path)
        thawed_view = load_snapshot(path).view()
        compiled_view = compiled.view()
        for vertex_id in range(compiled_view.num_vertices):
            assert list(thawed_view.out(vertex_id)) == \
                list(compiled_view.out(vertex_id))
            for label_id in range(compiled_view.num_labels):
                assert list(thawed_view.in_by_label(vertex_id, label_id)) \
                    == list(compiled_view.in_by_label(vertex_id, label_id))

    def test_indexed_graph_pickles_without_view(self, graph):
        indexed = IndexedGraph(graph)
        _view = indexed.view()  # populate the cached view
        clone = pickle.loads(pickle.dumps(indexed))
        assert clone._view is None  # rebuilt lazily in the worker
        assert list(clone.view().out(0)) == list(indexed.view().out(0))
        assert clone.has_edge(*next(iter(indexed.edges())))
