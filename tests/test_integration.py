"""End-to-end integration scenarios across modules."""


from tests.conftest import paths_agree

from repro import DbGraph, RspqSolver, classify, language, solve_rspq
from repro.algorithms.exact import ExactSolver
from repro.algorithms.rpq import RpqSolver
from repro.core.nice_paths import TractableSolver
from repro.graphs.generators import transportation_network


class TestTransportationScenario:
    """The introduction's Google-Maps motivation, end to end."""

    def test_stopover_query(self):
        graph, cities = transportation_network(10, seed=1)
        # Highways then one ferry then regional roads, nodes distinct.
        lang = language("h*(f + eps)r*")
        assert classify(lang.dfa).is_tractable()
        solver = RspqSolver(lang)
        exact = ExactSolver(lang)
        hits = 0
        for target in cities[1:6]:
            mine = solver.shortest_simple_path(graph, cities[0], target)
            truth = exact.shortest_simple_path(graph, cities[0], target)
            assert paths_agree(mine, truth)
            hits += mine is not None
        assert hits > 0

    def test_walk_vs_simple_on_network(self):
        graph, cities = transportation_network(8, seed=3)
        lang = language("r*")
        rpq = RpqSolver(lang)
        solver = RspqSolver(lang)
        for target in cities[1:4]:
            if solver.exists(graph, cities[0], target):
                assert rpq.exists(graph, cities[0], target)


class TestHardnessPipeline:
    """classify -> witness -> reduction -> solve, in one flow."""

    def test_full_np_pipeline(self):
        from repro.algorithms.disjoint_paths import (
            vertex_disjoint_paths_exist,
        )
        from repro.algorithms.reductions import disjoint_paths_to_rspq

        lang = language("a*b(cc)*d")
        result = classify(lang.dfa)
        assert not result.is_tractable()
        edges = {(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)}
        truth = vertex_disjoint_paths_exist(edges, 0, 1, 2, 3)
        graph, x, y = disjoint_paths_to_rspq(
            edges, 0, 1, 2, 3, result.witness
        )
        assert ExactSolver(lang).exists(graph, x, y) == truth


class TestMixedWorkflow:
    def test_one_shot_helper(self):
        graph = DbGraph.from_edges([(0, "a", 1), (1, "b", 2), (2, "c", 3)])
        result = solve_rspq("a*(b + eps)c*", graph, 0, 3)
        assert result.found
        assert result.path.word == "abc"
        assert result.strategy == "trc-nice-path"

    def test_language_objects_are_reusable(self):
        lang = language("a*c*")
        solver = TractableSolver(lang)
        graph_one = DbGraph.from_edges([(0, "a", 1), (1, "c", 2)])
        graph_two = DbGraph.from_edges([(0, "c", 1)])
        assert solver.shortest_simple_path(graph_one, 0, 2).word == "ac"
        assert solver.shortest_simple_path(graph_two, 0, 1).word == "c"

    def test_classification_strings(self):
        assert str(classify(language("abc").dfa)) == "Classification(AC0)"
