"""Tests for the DAG solver (Theorem 8 base case) and width diagnostics."""

import pytest

from repro.algorithms.dag import DagRspqSolver, is_dag
from repro.algorithms.exact import ExactSolver
from repro.algorithms.treewidth import (
    greedy_feedback_vertex_set,
    undirected_treewidth_upper_bound,
)
from repro.errors import GraphError
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import (
    grid_graph,
    labeled_cycle,
    labeled_path,
    layered_dag,
)
from repro.languages import language


class TestIsDag:
    def test_path_is_dag(self):
        assert is_dag(labeled_path("abc"))

    def test_cycle_is_not(self):
        assert not is_dag(labeled_cycle("ab"))

    def test_grid_is_dag(self):
        assert is_dag(grid_graph(3, 3))


class TestDagSolver:
    def test_rejects_cyclic_graphs(self):
        with pytest.raises(GraphError):
            DagRspqSolver(labeled_cycle("ab"))

    def test_agrees_with_exact_on_random_dags(self):
        for seed in range(10):
            graph = layered_dag(4, 3, "ab", density=0.6, seed=seed)
            solver = DagRspqSolver(graph)
            for regex in ["a*", "(ab)*", "a*ba*", "(aa)*"]:
                lang = language(regex)
                exact = ExactSolver(lang)
                mine = solver.shortest_simple_path(lang, (0, 0), (3, 2))
                truth = exact.shortest_simple_path(graph, (0, 0), (3, 2))
                assert (mine is None) == (truth is None), (seed, regex)
                if mine is not None:
                    assert len(mine) == len(truth)

    def test_hard_languages_are_easy_on_dags(self):
        # The point of Theorem 8's DAG case: (aa)* is NP-complete in
        # general but trivially polynomial here.
        graph = grid_graph(4, 4)
        solver = DagRspqSolver(graph)
        path = solver.shortest_simple_path("((a+b)(a+b))*", (0, 0), (3, 3))
        assert path is not None
        assert len(path) % 2 == 0


class TestWidthDiagnostics:
    def test_fvs_of_dag_is_empty(self):
        assert greedy_feedback_vertex_set(grid_graph(3, 3)) == set()

    def test_fvs_breaks_cycles(self):
        graph = labeled_cycle("aaaa")
        fvs = greedy_feedback_vertex_set(graph)
        assert fvs
        remaining = graph.subgraph(
            [v for v in graph.vertices() if v not in fvs]
        )
        assert is_dag(remaining)

    def test_treewidth_bound_of_path(self):
        assert undirected_treewidth_upper_bound(labeled_path("aaa")) <= 1

    def test_treewidth_bound_of_grid(self):
        bound = undirected_treewidth_upper_bound(grid_graph(3, 3))
        assert 3 <= bound <= 4  # treewidth of the 3x3 grid is 3

    def test_treewidth_bound_of_clique(self):
        graph = DbGraph()
        for i in range(5):
            for j in range(5):
                if i != j:
                    graph.add_edge(i, "a", j)
        assert undirected_treewidth_upper_bound(graph) == 4
