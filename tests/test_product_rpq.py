"""Tests for the product graph and walk-semantics RPQ evaluation."""

from repro.algorithms.rpq import RpqSolver
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import labeled_cycle, labeled_path
from repro.graphs.product import ProductGraph, rpq_reachable, shortest_walk
from repro.languages import language


class TestRpqReachable:
    def test_straight_line(self):
        graph = labeled_path("ab")
        assert rpq_reachable(graph, language("ab").dfa, 0) == {2}

    def test_walks_may_repeat_vertices(self):
        # (aa)* on a 3-cycle reaches everything eventually.
        graph = labeled_cycle("aaa")
        reach = rpq_reachable(graph, language("(aa)*").dfa, 0)
        assert reach == {0, 1, 2}

    def test_empty_language(self):
        graph = labeled_path("a")
        assert rpq_reachable(graph, language("∅", alphabet={"a"}).dfa, 0) == set()

    def test_epsilon_reaches_self(self):
        graph = labeled_path("a")
        assert 0 in rpq_reachable(graph, language("a*").dfa, 0)


class TestShortestWalk:
    def test_shortest_walk_length(self):
        graph = labeled_cycle("aaa")
        walk = shortest_walk(graph, language("(aa)*").dfa, 0, 2)
        assert walk is not None
        assert len(walk) == 2
        assert walk.word == "aa"

    def test_walk_can_be_non_simple(self):
        # 0 -> 1 -> 0 -> 1: (aa)* needs even length; simple paths cannot
        # reach vertex 1 in the 2-cycle with even length, walks can...
        graph = labeled_cycle("aa")
        lang = language("(aaa)*")
        walk = shortest_walk(graph, lang.dfa, 0, 1)
        assert walk is not None
        assert len(walk) == 3
        assert not walk.is_simple()

    def test_no_walk(self):
        graph = labeled_path("ab")
        assert shortest_walk(graph, language("ba").dfa, 0, 2) is None

    def test_trivial_walk(self):
        graph = labeled_path("a")
        walk = shortest_walk(graph, language("a*").dfa, 0, 0)
        assert walk is not None and len(walk) == 0


class TestProductGraph:
    def test_forward_backward_consistency(self):
        graph = labeled_path("aab")
        dfa = language("a*b").dfa
        product = ProductGraph(graph, dfa)
        forward = product.forward_reachable(0, dfa.initial)
        # The accepting pair (3, final) is forward reachable...
        finals = [(3, q) for q in dfa.accepting]
        assert any(node in forward for node in finals)
        # ... and the start is backward reachable from it.
        for node in finals:
            if node in forward:
                backward = product.backward_reachable(*node)
                assert (0, dfa.initial) in backward

    def test_live_states_prune(self):
        graph = DbGraph.from_edges([(0, "a", 1), (0, "b", 2)])
        dfa = language("a").dfa
        product = ProductGraph(graph, dfa)
        live = product.live_states(1)
        assert (0, dfa.initial) in live
        assert all(vertex != 2 for vertex, _state in live)


class TestRpqSolver:
    def test_evaluate_all_pairs(self):
        graph = labeled_path("aa")
        pairs = RpqSolver("a^+").evaluate_all_pairs(graph)
        assert pairs == {(0, 1), (1, 2), (0, 2)}

    def test_walk_vs_simple_divergence(self):
        # The motivating gap: (aa)* on an odd cycle.
        graph = labeled_cycle("aaa")
        walk_solver = RpqSolver("(aa)*")
        assert walk_solver.exists(graph, 0, 1)
        from repro.algorithms.exact import ExactSolver

        assert not ExactSolver("(aa)*").exists(graph, 0, 1)
