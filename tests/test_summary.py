"""Tests for path annotations and summaries (Definitions 2-3)."""

import pytest

from repro import language
from repro.core.summary import (
    GapMarker,
    annotate,
    default_bound,
    summarize,
)
from repro.errors import GraphError
from repro.graphs.dbgraph import Path
from repro.graphs.generators import figure3_graph


FIG3_VERTICES = tuple("v%d" % i for i in range(1, 16))
FIG3_LABELS = ("a", "c", "c", "c", "c", "c", "c", "c", "a", "b", "b", "b",
               "a", "a")


@pytest.fixture
def example2():
    return language("a(c{2,} + eps)(a+b)*(ac)?a*")


@pytest.fixture
def fig3_path():
    graph, _x, _y = figure3_graph()
    path = Path(FIG3_VERTICES, FIG3_LABELS)
    assert graph.is_path(path)
    return path


class TestAnnotation:
    def test_annotation_length(self, example2, fig3_path):
        states = annotate(fig3_path, example2.dfa)
        assert len(states) == len(fig3_path.vertices)

    def test_annotation_starts_at_initial(self, example2, fig3_path):
        states = annotate(fig3_path, example2.dfa)
        assert states[0] == example2.dfa.initial

    def test_annotation_tracks_run(self, example2, fig3_path):
        states = annotate(fig3_path, example2.dfa)
        assert states[-1] == example2.dfa.run(fig3_path.word)

    def test_accepting_iff_word_in_language(self, example2, fig3_path):
        states = annotate(fig3_path, example2.dfa)
        assert (states[-1] in example2.dfa.accepting) == example2.accepts(
            fig3_path.word
        )


class TestSummaries:
    def test_example2_summary_with_paper_bound(self, example2, fig3_path):
        # The paper uses N = 3 for the Figure-3 illustration: the two
        # looping components C1 (c-loop) and C2 (a/b-loop) are long runs.
        summary = summarize(fig3_path, example2.dfa, bound=3)
        assert summary.num_gaps() == 2
        markers = [
            element
            for element in summary.elements
            if isinstance(element, GapMarker)
        ]
        assert markers[0].symbols == frozenset("c")
        assert markers[1].symbols == frozenset("ab")

    def test_default_bound_compresses_nothing_here(self, example2, fig3_path):
        # With the worst-case N = 2M² no stretch of this short path
        # qualifies as a long run.
        assert summarize(fig3_path, example2.dfa).num_gaps() == 0

    def test_summary_endpoints_preserved(self, example2, fig3_path):
        summary = summarize(fig3_path, example2.dfa, bound=3)
        pinned = summary.vertices()
        assert pinned[0] == fig3_path.source
        assert pinned[-1] == fig3_path.target

    def test_summary_of_short_path_is_path(self, example2):
        path = Path(("v1", "v2"), ("a",))
        summary = summarize(path, example2.dfa, bound=3)
        assert summary.num_gaps() == 0
        assert summary.elements == ("v1", "a", "v2")

    def test_bad_bound(self, example2, fig3_path):
        with pytest.raises(GraphError):
            summarize(fig3_path, example2.dfa, bound=0)

    def test_default_bound_value(self, example2):
        assert default_bound(example2.dfa) == 2 * example2.num_states ** 2

    def test_size_bound(self, example2, fig3_path):
        # Definition 3 remark: at most ~2M³ elements for fixed L.
        summary = summarize(fig3_path, example2.dfa, bound=3)
        assert summary.size() <= 2 * example2.num_states ** 3

    def test_long_single_component_run(self):
        lang = language("a*")
        path = Path(tuple(range(10)), ("a",) * 9)
        summary = summarize(path, lang.dfa, bound=2)
        assert summary.num_gaps() == 1
        # First vertex kept, marker, then the last N+1 vertices.
        assert summary.elements[0] == 0
        assert isinstance(summary.elements[1], GapMarker)
