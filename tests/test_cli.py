"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs import io as graph_io
from repro.graphs.dbgraph import DbGraph


@pytest.fixture
def graph_file(tmp_path):
    graph = DbGraph.from_edges(
        [("s", "a", "m"), ("m", "b", "n"), ("n", "b", "o"), ("o", "c", "t")]
    )
    target = tmp_path / "graph.txt"
    graph_io.dump(graph, target)
    return str(target)


class TestClassify:
    def test_tractable(self, capsys):
        assert main(["classify", "a*(bb+ + eps)c*"]) == 0
        out = capsys.readouterr().out
        assert "NL-complete" in out
        assert "in trC     : True" in out

    def test_hard(self, capsys):
        assert main(["classify", "a*ba*"]) == 0
        assert "NP-complete" in capsys.readouterr().out

    def test_finite(self, capsys):
        assert main(["classify", "ab + ba"]) == 0
        assert "AC0" in capsys.readouterr().out


class TestWitness:
    def test_hard_language(self, capsys):
        assert main(["witness", "(aa)*"]) == 0
        out = capsys.readouterr().out
        assert "w1 =" in out and "wr =" in out

    def test_tractable_language(self, capsys):
        assert main(["witness", "a*"]) == 1
        assert "tractable" in capsys.readouterr().out


class TestPsitr:
    def test_decomposition_printed(self, capsys):
        assert main(["psitr", "a*(bb+ + eps)c*"]) == 0
        out = capsys.readouterr().out
        assert ">=" in out

    def test_hard_language_fails_cleanly(self, capsys):
        assert main(["psitr", "a*ba*"]) == 2
        assert "error" in capsys.readouterr().err


class TestSolve:
    def test_found(self, capsys, graph_file):
        code = main(["solve", "a*(bb+ + eps)c*", graph_file, "s", "t"])
        assert code == 0
        out = capsys.readouterr().out
        assert "word    : abbc" in out
        assert "trc-nice-path" in out

    def test_not_found(self, capsys, graph_file):
        code = main(["solve", "c*", graph_file, "s", "t"])
        assert code == 1
        assert "no simple path" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        code = main(["solve", "a*", "/nonexistent/graph.txt", "0", "1"])
        assert code == 2

    def test_bad_regex(self, capsys):
        assert main(["classify", "(((("]) == 2


class TestBatch:
    @pytest.fixture
    def queries_file(self, tmp_path):
        target = tmp_path / "queries.txt"
        target.write_text(
            "# mixed workload — regexes may contain spaces\n"
            "\n"
            "s t a*(bb+ + eps)c*\n"
            "s t ab + ba\n"
            "s o a*ba*\n"
            "s t a*(bb+ + eps)c*\n"
        )
        return str(target)

    def test_batch_runs_all_queries(self, capsys, graph_file, queries_file):
        code = main(["batch", graph_file, queries_file])
        out = capsys.readouterr().out
        assert code == 1  # some queries found no path
        assert "4 queries" in out
        assert "trc-nice-path" in out
        assert "exact-backtracking" in out
        assert "cache hits" in out

    def test_batch_reuses_plans(self, capsys, graph_file, queries_file):
        main(["batch", graph_file, queries_file])
        out = capsys.readouterr().out
        # 3 distinct languages over 4 queries: one plan is reused.
        assert "3 compiled, 1 cache hits" in out

    def test_batch_stats_flag(self, capsys, graph_file, queries_file):
        code = main(["batch", graph_file, queries_file, "--stats"])
        assert code == 1
        out = capsys.readouterr().out
        assert "plan_cache_hit=True" in out
        assert "steps=" in out

    def test_batch_all_found_exits_zero(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "ok.txt"
        queries.write_text("s t a*(bb+ + eps)c*\n")
        assert main(["batch", graph_file, str(queries)]) == 0

    def test_batch_malformed_line(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "bad.txt"
        queries.write_text("s t\n")
        assert main(["batch", graph_file, str(queries)]) == 2
        assert "error" in capsys.readouterr().err

    def test_batch_missing_file(self, capsys, graph_file):
        assert main(["batch", graph_file, "/nonexistent/queries.txt"]) == 2

    def test_batch_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "batch" in capsys.readouterr().out

    def test_batch_bad_cache_size(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "one.txt"
        queries.write_text("s t a*\n")
        code = main(
            ["batch", graph_file, str(queries), "--plan-cache-size", "0"]
        )
        assert code == 2
        assert "plan-cache-size" in capsys.readouterr().err

    def test_batch_query_error_isolated(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "mixed.txt"
        queries.write_text("zzz t a*\ns t a*(bb+ + eps)c*\n")
        code = main(["batch", graph_file, str(queries)])
        assert code == 2
        out = capsys.readouterr().out
        assert "error: unknown vertex 'zzz'" in out
        assert "word abbc" in out  # the good query still ran
        assert "1 errors" in out
