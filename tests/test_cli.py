"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs import io as graph_io
from repro.graphs.dbgraph import DbGraph


@pytest.fixture
def graph_file(tmp_path):
    graph = DbGraph.from_edges(
        [("s", "a", "m"), ("m", "b", "n"), ("n", "b", "o"), ("o", "c", "t")]
    )
    target = tmp_path / "graph.txt"
    graph_io.dump(graph, target)
    return str(target)


class TestClassify:
    def test_tractable(self, capsys):
        assert main(["classify", "a*(bb+ + eps)c*"]) == 0
        out = capsys.readouterr().out
        assert "NL-complete" in out
        assert "in trC     : True" in out

    def test_hard(self, capsys):
        assert main(["classify", "a*ba*"]) == 0
        assert "NP-complete" in capsys.readouterr().out

    def test_finite(self, capsys):
        assert main(["classify", "ab + ba"]) == 0
        assert "AC0" in capsys.readouterr().out


class TestWitness:
    def test_hard_language(self, capsys):
        assert main(["witness", "(aa)*"]) == 0
        out = capsys.readouterr().out
        assert "w1 =" in out and "wr =" in out

    def test_tractable_language(self, capsys):
        assert main(["witness", "a*"]) == 1
        assert "tractable" in capsys.readouterr().out


class TestPsitr:
    def test_decomposition_printed(self, capsys):
        assert main(["psitr", "a*(bb+ + eps)c*"]) == 0
        out = capsys.readouterr().out
        assert ">=" in out

    def test_hard_language_fails_cleanly(self, capsys):
        assert main(["psitr", "a*ba*"]) == 2
        assert "error" in capsys.readouterr().err


class TestSolve:
    def test_found(self, capsys, graph_file):
        code = main(["solve", "a*(bb+ + eps)c*", graph_file, "s", "t"])
        assert code == 0
        out = capsys.readouterr().out
        assert "word    : abbc" in out
        assert "trc-nice-path" in out

    def test_not_found(self, capsys, graph_file):
        code = main(["solve", "c*", graph_file, "s", "t"])
        assert code == 1
        assert "no simple path" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        code = main(["solve", "a*", "/nonexistent/graph.txt", "0", "1"])
        assert code == 2

    def test_bad_regex(self, capsys):
        assert main(["classify", "(((("]) == 2
