"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graphs import io as graph_io
from repro.graphs.dbgraph import DbGraph


@pytest.fixture
def graph_file(tmp_path):
    graph = DbGraph.from_edges(
        [("s", "a", "m"), ("m", "b", "n"), ("n", "b", "o"), ("o", "c", "t")]
    )
    target = tmp_path / "graph.txt"
    graph_io.dump(graph, target)
    return str(target)


class TestClassify:
    def test_tractable(self, capsys):
        assert main(["classify", "a*(bb+ + eps)c*"]) == 0
        out = capsys.readouterr().out
        assert "NL-complete" in out
        assert "in trC     : True" in out

    def test_hard(self, capsys):
        assert main(["classify", "a*ba*"]) == 0
        assert "NP-complete" in capsys.readouterr().out

    def test_finite(self, capsys):
        assert main(["classify", "ab + ba"]) == 0
        assert "AC0" in capsys.readouterr().out


class TestWitness:
    def test_hard_language(self, capsys):
        assert main(["witness", "(aa)*"]) == 0
        out = capsys.readouterr().out
        assert "w1 =" in out and "wr =" in out

    def test_tractable_language(self, capsys):
        assert main(["witness", "a*"]) == 1
        assert "tractable" in capsys.readouterr().out


class TestPsitr:
    def test_decomposition_printed(self, capsys):
        assert main(["psitr", "a*(bb+ + eps)c*"]) == 0
        out = capsys.readouterr().out
        assert ">=" in out

    def test_hard_language_fails_cleanly(self, capsys):
        assert main(["psitr", "a*ba*"]) == 2
        assert "error" in capsys.readouterr().err


class TestSolve:
    def test_found(self, capsys, graph_file):
        code = main(["solve", "a*(bb+ + eps)c*", graph_file, "s", "t"])
        assert code == 0
        out = capsys.readouterr().out
        assert "word    : abbc" in out
        assert "trc-nice-path" in out

    def test_not_found(self, capsys, graph_file):
        code = main(["solve", "c*", graph_file, "s", "t"])
        assert code == 1
        assert "no simple path" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        code = main(["solve", "a*", "/nonexistent/graph.txt", "0", "1"])
        assert code == 2

    def test_bad_regex(self, capsys):
        assert main(["classify", "(((("]) == 2


class TestBatch:
    @pytest.fixture
    def queries_file(self, tmp_path):
        target = tmp_path / "queries.txt"
        target.write_text(
            "# mixed workload — regexes may contain spaces\n"
            "\n"
            "s t a*(bb+ + eps)c*\n"
            "s t ab + ba\n"
            "s o a*ba*\n"
            "s t a*(bb+ + eps)c*\n"
        )
        return str(target)

    def test_batch_runs_all_queries(self, capsys, graph_file, queries_file):
        code = main(["batch", graph_file, queries_file])
        out = capsys.readouterr().out
        assert code == 1  # some queries found no path
        assert "4 queries" in out
        assert "trc-nice-path" in out
        assert "exact-backtracking" in out
        assert "cache hits" in out

    def test_batch_reuses_plans(self, capsys, graph_file, queries_file):
        main(["batch", graph_file, queries_file])
        out = capsys.readouterr().out
        # 3 distinct languages over 4 queries: one plan is reused.
        assert "3 compiled, 1 cache hits" in out

    def test_batch_stats_flag(self, capsys, graph_file, queries_file):
        code = main(["batch", graph_file, queries_file, "--stats"])
        assert code == 1
        out = capsys.readouterr().out
        assert "plan_cache_hit=True" in out
        assert "steps=" in out

    def test_batch_all_found_exits_zero(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "ok.txt"
        queries.write_text("s t a*(bb+ + eps)c*\n")
        assert main(["batch", graph_file, str(queries)]) == 0

    @pytest.fixture
    def gadget_files(self, tmp_path):
        # (aa)* from 0 to 4: accepting walk 0-1-2-3-1-2-4 but no
        # simple path; padding keeps the walk under the n-1 cap, so
        # the portfolio answers with a probabilistic negative.
        graph = DbGraph()
        for u, l, v in [
            ("0", "a", "1"), ("1", "a", "2"), ("2", "a", "3"),
            ("3", "a", "1"), ("2", "a", "4"),
        ]:
            graph.add_edge(u, l, v)
        graph.add_vertex("5")
        graph.add_vertex("6")
        graph_path = tmp_path / "gadget.txt"
        graph_io.dump(graph, graph_path)
        queries = tmp_path / "hard.txt"
        queries.write_text("0 4 (aa)*\n0 2 (aa)*\n")
        return str(graph_path), str(queries)

    def test_batch_portfolio_flag(self, capsys, gadget_files):
        graph_path, queries_path = gadget_files
        code = main(["batch", graph_path, queries_path, "--portfolio"])
        out = capsys.readouterr().out
        assert code == 1  # the hard query finds no path
        assert "portfolio:" in out
        assert "probabilistic, failure bound" in out

    def test_batch_max_path_edges_flag(self, capsys, gadget_files):
        graph_path, queries_path = gadget_files
        code = main(
            ["batch", graph_path, queries_path, "--max-path-edges", "1"]
        )
        assert code == 1
        assert "no path" in capsys.readouterr().out

    def test_batch_bad_portfolio_knobs(self, capsys, gadget_files):
        graph_path, queries_path = gadget_files
        assert main(
            ["batch", graph_path, queries_path, "--max-path-edges", "-1"]
        ) == 2
        assert main(
            ["batch", graph_path, queries_path,
             "--portfolio-failure-probability", "1.5"]
        ) == 2

    def test_batch_malformed_line(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "bad.txt"
        queries.write_text("s t\n")
        assert main(["batch", graph_file, str(queries)]) == 2
        assert "error" in capsys.readouterr().err

    def test_batch_missing_file(self, capsys, graph_file):
        assert main(["batch", graph_file, "/nonexistent/queries.txt"]) == 2

    def test_batch_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "batch" in capsys.readouterr().out

    def test_batch_bad_cache_size(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "one.txt"
        queries.write_text("s t a*\n")
        code = main(
            ["batch", graph_file, str(queries), "--plan-cache-size", "0"]
        )
        assert code == 2
        assert "plan-cache-size" in capsys.readouterr().err

    def test_batch_query_error_isolated(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "mixed.txt"
        queries.write_text("zzz t a*\ns t a*(bb+ + eps)c*\n")
        code = main(["batch", graph_file, str(queries)])
        assert code == 2
        out = capsys.readouterr().out
        assert "error: unknown vertex 'zzz'" in out
        assert "word abbc" in out  # the good query still ran
        assert "1 errors" in out

    def test_batch_workers_same_answers(
        self, capsys, graph_file, queries_file
    ):
        serial_code = main(["batch", graph_file, queries_file])
        serial_out = capsys.readouterr().out
        parallel_code = main(
            ["batch", graph_file, queries_file, "--workers", "3"]
        )
        parallel_out = capsys.readouterr().out
        assert parallel_code == serial_code
        # Per-query lines are identical; only the summary (timing,
        # worker count) may differ.
        assert parallel_out.splitlines()[:-1] == serial_out.splitlines()[:-1]
        assert "3 workers" in parallel_out

    def test_batch_nonpositive_budget_is_usage_error(
        self, capsys, graph_file, queries_file
    ):
        for bad in ("0", "-1"):
            code = main(
                ["batch", graph_file, queries_file, "--budget", bad]
            )
            assert code == 2
            assert "--budget" in capsys.readouterr().err

    def test_solve_nonpositive_budget_is_usage_error(
        self, capsys, graph_file
    ):
        code = main(["solve", "a*ba*", graph_file, "s", "t", "--budget", "0"])
        assert code == 2
        assert "--budget" in capsys.readouterr().err

    def test_batch_bad_workers(self, capsys, graph_file, queries_file):
        code = main(
            ["batch", graph_file, queries_file, "--workers", "0"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_batch_jsonl(self, capsys, graph_file, queries_file, tmp_path):
        out_path = tmp_path / "results.jsonl"
        main(["batch", graph_file, queries_file, "--jsonl", str(out_path)])
        capsys.readouterr()
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 4
        records = [json.loads(line) for line in lines]
        found = [r for r in records if r["found"]]
        assert found, records
        first = found[0]
        assert first["word"] == "abbc"
        assert first["length"] == 4
        assert first["strategy"] == "trc-nice-path"
        assert first["steps"] >= 1
        assert first["seconds"] >= 0
        assert first["error"] is None
        assert {"plan_cache_hit", "path", "source", "target"} <= set(first)

    def test_batch_jsonl_field_order_is_documented(
        self, capsys, graph_file, queries_file, tmp_path
    ):
        from repro.service.protocol import RESULT_FIELDS

        out_path = tmp_path / "results.jsonl"
        main(["batch", graph_file, queries_file, "--jsonl", str(out_path)])
        capsys.readouterr()
        for line in out_path.read_text().strip().splitlines():
            record = json.loads(line)
            # insertion order survives json round-trips, so the wire
            # order is exactly the documented RESULT_FIELDS order
            assert list(record) == list(RESULT_FIELDS)

    def test_batch_jsonl_is_deterministic(
        self, capsys, graph_file, queries_file, tmp_path
    ):
        first = tmp_path / "one.jsonl"
        second = tmp_path / "two.jsonl"
        main(["batch", graph_file, queries_file, "--jsonl", str(first)])
        main(["batch", graph_file, queries_file, "--jsonl", str(second)])
        capsys.readouterr()

        def stable(path):
            # all fields except the per-run timing
            records = []
            for line in path.read_text().strip().splitlines():
                record = json.loads(line)
                record.pop("seconds")
                records.append(record)
            return records

        assert stable(first) == stable(second)

    def test_batch_jsonl_roundtrips_the_batch_result(
        self, capsys, graph_file, queries_file, tmp_path
    ):
        # write → parse → compare to a fresh equivalent BatchResult
        from repro.cli import _parse_queries
        from repro.engine import QueryEngine
        from repro.graphs import io as gio

        out_path = tmp_path / "results.jsonl"
        main(["batch", graph_file, queries_file, "--jsonl", str(out_path)])
        capsys.readouterr()
        parsed = [
            json.loads(line)
            for line in out_path.read_text().strip().splitlines()
        ]
        batch = QueryEngine(gio.load(graph_file)).run_batch(
            _parse_queries(queries_file)
        )
        assert len(parsed) == len(batch.results)
        for record, result in zip(parsed, batch.results):
            assert record["language"] == str(result.language)
            assert record["source"] == result.source
            assert record["target"] == result.target
            assert record["strategy"] == result.strategy
            assert record["found"] == result.found
            assert record["length"] == result.length
            assert record["word"] == (
                None if result.path is None else result.path.word
            )
            assert record["path"] == (
                None if result.path is None else list(result.path.vertices)
            )
            assert record["decompose_failed"] == result.decompose_failed
            assert record["steps"] == result.stats.steps
            assert record["error"] == result.error

    def test_batch_jsonl_error_row(self, capsys, graph_file, tmp_path):
        queries = tmp_path / "mixed.txt"
        queries.write_text("zzz t a*\ns t a*(bb+ + eps)c*\n")
        out_path = tmp_path / "results.jsonl"
        main(["batch", graph_file, str(queries), "--jsonl", str(out_path)])
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in out_path.read_text().strip().splitlines()
        ]
        assert len(records) == 2
        assert "unknown vertex" in records[0]["error"]
        assert records[0]["strategy"] == "error"
        assert records[0]["found"] is False
        assert records[1]["error"] is None


class TestSnapshotCommand:
    def test_snapshot_then_warm_load(self, capsys, graph_file, tmp_path):
        snap = tmp_path / "graph.snap"
        assert main(["snapshot", graph_file, str(snap)]) == 0
        out = capsys.readouterr().out
        assert "|V|=5" in out and "bytes" in out

        from repro.service import load_snapshot

        thawed = load_snapshot(str(snap))
        assert thawed.num_vertices == 5
        assert thawed.has_vertex("s")

    def test_snapshot_missing_graph(self, capsys, tmp_path):
        code = main(
            ["snapshot", "/nonexistent/graph.txt", str(tmp_path / "x.snap")]
        )
        assert code == 2


class TestServeCommand:
    def test_serve_requires_a_graph(self, capsys):
        assert main(["serve"]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_serve_rejects_malformed_pair(self, capsys, graph_file):
        assert main(["serve", "--graph", graph_file]) == 2
        assert "NAME=PATH" in capsys.readouterr().err

    def test_serve_rejects_nonpositive_max_graphs(self, capsys, graph_file):
        code = main([
            "serve", "--graph", "g=%s" % graph_file, "--max-graphs", "0",
        ])
        assert code == 2
        assert "--max-graphs" in capsys.readouterr().err

    def test_cli_import_stays_light(self):
        # The CLI needs only the wire protocol; the asyncio server and
        # HTTP client must load lazily, not on every `repro classify`.
        import subprocess
        import sys

        subprocess.run(
            [
                sys.executable,
                "-c",
                "import repro.cli, sys; "
                "assert 'repro.service.server' not in sys.modules; "
                "assert 'repro.service.client' not in sys.modules",
            ],
            check=True,
        )

    def test_serve_in_help(self, capsys):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "serve" in out and "snapshot" in out


class TestExplain:
    def test_tractable_plan(self, capsys):
        assert main(["explain", "a*(bb+ + eps)c*"]) == 0
        out = capsys.readouterr().out
        assert "strategy       : trc-nice-path" in out
        assert "in trC         : True" in out
        assert "NL-complete" in out
        assert "Ψtr anchored search" in out
        assert "plan key kind  : regex" in out
        assert "plan compile" in out

    def test_hard_plan_without_graph_names_both_views(self, capsys):
        assert main(["explain", "a*ba*"]) == 0
        out = capsys.readouterr().out
        assert "strategy       : exact-backtracking" in out
        assert "NP-complete" in out
        assert "csr (IndexedGraph)" in out
        assert "dict (DbGraph" in out

    def test_finite_plan(self, capsys):
        assert main(["explain", "ab + ba"]) == 0
        out = capsys.readouterr().out
        assert "strategy       : finite-AC0" in out
        assert "finite         : True" in out

    def test_hard_plan_reports_the_ladder(self, capsys):
        assert main(["explain", "(aa)*"]) == 0
        out = capsys.readouterr().out
        assert (
            "portfolio      : walk-probe -> color-coding -> algebraic "
            "-> exact" in out
        )
        assert "budget split" in out
        assert "exact=30%" in out
        assert "failure bound 0.001" in out

    def test_tractable_plan_has_no_ladder(self, capsys):
        assert main(["explain", "a*c*"]) == 0
        assert "portfolio      :" not in capsys.readouterr().out

    def test_graph_option_reports_compiled_view(self, capsys, graph_file):
        assert main(["explain", "a*", "--graph", graph_file]) == 0
        out = capsys.readouterr().out
        assert "graph view     : csr (IndexedGraph over" in out
        assert "|V|=5 |E|=4" in out
        assert "reverse CSR" in out

    def test_never_executes_a_search(self, capsys, graph_file, monkeypatch):
        # explain must not touch a solver's search entry points.
        from repro.core.solver import RspqSolver

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("explain executed a search")

        monkeypatch.setattr(RspqSolver, "shortest_simple_path", boom)
        assert main(["explain", "a*ba*", "--graph", graph_file]) == 0

    def test_bad_regex_is_usage_error(self, capsys):
        assert main(["explain", "a*("]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_graph_file_is_usage_error(self, capsys):
        assert main(["explain", "a*", "--graph", "/no/such/file"]) == 2
        assert "error" in capsys.readouterr().err

    def test_label_mask_and_coverage(self, capsys, graph_file):
        assert main(["explain", "a*b", "--graph", graph_file]) == 0
        out = capsys.readouterr().out
        assert "label mask     : {a, b}" in out
        assert "label coverage : 2/3 graph labels usable by L" in out
        assert "components" in out

    def test_index_verdict_reachable(self, capsys, graph_file):
        assert main([
            "explain", "a*(bb+ + eps)c*", "--graph", graph_file,
            "--source", "s", "--target", "t",
        ]) == 0
        out = capsys.readouterr().out
        assert "index verdict  : reachable under L's label mask" in out

    def test_index_verdict_short_circuit(self, capsys, graph_file):
        # t has no outgoing edges: nothing is reachable from it.
        assert main([
            "explain", "a*", "--graph", graph_file,
            "--source", "t", "--target", "s",
        ]) == 0
        out = capsys.readouterr().out
        assert "index verdict  : short_circuit: unreachable" in out
        assert "NOT_FOUND" in out

    def test_verdict_never_executes_a_search(self, capsys, graph_file,
                                             monkeypatch):
        from repro.core.solver import RspqSolver

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("explain executed a search")

        monkeypatch.setattr(RspqSolver, "shortest_simple_path", boom)
        assert main([
            "explain", "a*ba*", "--graph", graph_file,
            "--source", "s", "--target", "t",
        ]) == 0

    def test_source_without_target_is_usage_error(self, capsys,
                                                  graph_file):
        assert main([
            "explain", "a*", "--graph", graph_file, "--source", "s",
        ]) == 2
        assert "together" in capsys.readouterr().err

    def test_source_without_graph_is_usage_error(self, capsys):
        assert main([
            "explain", "a*", "--source", "s", "--target", "t",
        ]) == 2
        assert "--graph" in capsys.readouterr().err

    def test_unknown_vertex_is_usage_error(self, capsys, graph_file):
        assert main([
            "explain", "a*", "--graph", graph_file,
            "--source", "nope", "--target", "t",
        ]) == 2
        assert "unknown vertex" in capsys.readouterr().err
