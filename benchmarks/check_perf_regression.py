"""CI perf-regression gate over the ``BENCH_*.json`` artifacts.

Every bench module records its headline numbers (speedup ratios, step
counts) into a ``BENCH_<name>.json`` artifact via
``benchmarks/conftest.py``; the committed baselines under
``benchmarks/baselines/`` pin the expected trajectory.  This script
diffs a fresh run against those baselines:

* **ratio metrics** (keys ending in ``_speedup``, ``_ratio`` or
  ``_efficiency``) are higher-is-better and must not fall below ``min(baseline, clamp) *
  (1 - tolerance)``.  The default tolerance is deliberately generous
  (50%), and baselines above the clamp (default 5.0) are capped
  before the tolerance applies — a 40x smoke-profile speedup is a
  microsecond-scale measurement whose exact magnitude is noise, so
  the gate only insists it stays clearly above break-even.  Shared CI
  runners are noisy and the asserted floors inside the benches
  already guard the hard bars on the full profile; this gate catches
  *collapses* (a 400x speedup quietly becoming 1x), not jitter.
* a baseline bench whose artifact is missing from the run fails (the
  bench stopped running — exactly the silent rot CI must catch);
* a baseline ratio metric missing from a present artifact fails (the
  bench stopped recording it);
* metrics present in the run but not the baseline are reported as new
  (refresh the baselines to start tracking them).

Usage::

    python benchmarks/check_perf_regression.py \
        [--artifacts bench-artifacts] [--baselines benchmarks/baselines] \
        [--tolerance 0.5] [--clamp 5.0]

Exit status 0 when every gated metric holds, 1 on any regression.
Refresh the baselines by re-running the smoke bench suite with
``REPRO_BENCH_ARTIFACTS=benchmarks/baselines``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Metric-key suffixes gated as higher-is-better ratios.
RATIO_SUFFIXES = ("_speedup", "_ratio", "_efficiency")


def is_ratio_metric(key):
    return key.endswith(RATIO_SUFFIXES)


def load_artifacts(directory):
    """``{bench_name: metrics_dict}`` for every BENCH_*.json present."""
    artifacts = {}
    if not os.path.isdir(directory):
        return artifacts
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        artifacts[payload.get("bench", name[6:-5])] = payload.get(
            "metrics", {}
        )
    return artifacts


def compare(baselines, current, tolerance, clamp):
    """Returns ``(failures, report_lines)`` for the gated metrics."""
    failures = []
    lines = []
    for bench in sorted(baselines):
        base_metrics = {
            key: value
            for key, value in baselines[bench].items()
            if is_ratio_metric(key) and isinstance(value, (int, float))
        }
        if not base_metrics:
            continue
        if bench not in current:
            failures.append(
                "%s: artifact missing from this run (did the bench stop "
                "running?)" % bench
            )
            continue
        run_metrics = current[bench]
        for key, baseline_value in sorted(base_metrics.items()):
            if key not in run_metrics:
                failures.append(
                    "%s.%s: metric missing from this run (baseline %.3f)"
                    % (bench, key, baseline_value)
                )
                continue
            value = run_metrics[key]
            floor = min(baseline_value, clamp) * (1.0 - tolerance)
            status = "ok" if value >= floor else "REGRESSION"
            lines.append(
                "%-12s %s.%s: %.3f (baseline %.3f, floor %.3f)"
                % (status, bench, key, value, baseline_value, floor)
            )
            if value < floor:
                failures.append(
                    "%s.%s regressed: %.3f < floor %.3f (baseline %.3f "
                    "clamped to %.3f, tolerance %d%%)"
                    % (
                        bench, key, value, floor, baseline_value,
                        min(baseline_value, clamp), tolerance * 100,
                    )
                )
    for bench in sorted(current):
        for key in sorted(current[bench]):
            if not is_ratio_metric(key):
                continue
            if bench not in baselines or key not in baselines[bench]:
                lines.append(
                    "%-12s %s.%s: %.3f (no baseline — refresh to track)"
                    % ("new", bench, key, current[bench][key])
                )
    return failures, lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json artifacts against the committed "
        "baselines; fail on ratio regressions beyond the tolerance."
    )
    parser.add_argument(
        "--artifacts", default="bench-artifacts",
        help="directory the fresh run wrote its artifacts to",
    )
    parser.add_argument(
        "--baselines", default="benchmarks/baselines",
        help="directory of committed baseline artifacts",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional drop below the baseline (default 0.5)",
    )
    parser.add_argument(
        "--clamp", type=float, default=5.0,
        help="cap applied to baseline ratios before the tolerance "
        "(default 5.0): huge smoke-profile ratios are microsecond "
        "noise, so only a collapse toward break-even should fail",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    if args.clamp <= 0:
        parser.error("--clamp must be positive")

    baselines = load_artifacts(args.baselines)
    if not baselines:
        print(
            "no baselines under %s — nothing to gate (refresh with "
            "REPRO_BENCH_ARTIFACTS=%s and commit the result)"
            % (args.baselines, args.baselines)
        )
        return 0
    current = load_artifacts(args.artifacts)
    failures, lines = compare(
        baselines, current, args.tolerance, args.clamp
    )
    for line in lines:
        print(line)
    if failures:
        print()
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        print(
            "\n%d perf regression(s) against benchmarks/baselines "
            "(tolerance %d%%)" % (len(failures), args.tolerance * 100),
            file=sys.stderr,
        )
        return 1
    print(
        "\nperf gate ok: %d ratio metric(s) within tolerance"
        % len(lines)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
