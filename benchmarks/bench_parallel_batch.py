"""Parallel batch execution vs serial — re-entrant plans under load.

A ≥100-query mixed-regime workload (finite / trC / NP-hard languages,
with a hot language concentrating load on one shared plan) runs through
``QueryEngine.run_batch`` serially and with ``workers=4``.

Asserted shape (the ISSUE-2 acceptance criteria):

* parallel results are **path-for-path identical** to serial — same
  vertices, same labels, same strategies, for thread and process
  scheduling alike;
* under thread contention each distinct language is compiled **exactly
  once** (single-flight), verified via the real plan-cache counters;
* on hardware with more than one core, the parallel batch is **faster
  than serial wall-clock** (>1×) — threads on free-threaded builds,
  worker processes on GIL builds.  On a single-core machine the
  speedup test is skipped (no scheduler can beat serial there) and the
  overhead-bound test keeps the parallel path honest instead.
"""

import os
import sys

import pytest

from benchmarks.conftest import (
    measure_seconds,
    record_metric,
    scaled,
    skip_if_smoke,
)
from benchmarks.workloads import distinct_languages, mixed_workload

from repro.engine import QueryEngine

WORKERS = 4
NUM_QUERIES = scaled(150, 30)

#: The hot language: every 3rd query shares this plan.
HOT_LANGUAGE = "a*(bb^+ + eps)c*"


def _available_cores():
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _scaling_mode():
    """The scheduler that can actually use extra cores on this build."""
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return "process" if gil_enabled else "thread"


@pytest.fixture(scope="module")
def workload():
    return mixed_workload(
        num_queries=NUM_QUERIES,
        seed=23,
        num_vertices=scaled(300, 60),
        num_edges=scaled(950, 190),
        hot_language=HOT_LANGUAGE,
        hot_every=3,
    )


def _assert_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for reference, result in zip(serial.results, parallel.results):
        key = (str(reference.language), reference.source, reference.target)
        assert result.found == reference.found, key
        assert result.path == reference.path, key
        assert result.strategy == reference.strategy, key
        assert result.error == reference.error, key


def test_thread_parallel_matches_serial_path_for_path(workload):
    graph, queries = workload
    serial = QueryEngine(graph).run_batch(queries)
    parallel = QueryEngine(graph).run_batch(queries, workers=WORKERS)
    _assert_identical(serial, parallel)


def test_process_parallel_matches_serial_path_for_path(workload):
    graph, queries = workload
    serial = QueryEngine(graph).run_batch(queries)
    parallel = QueryEngine(graph).run_batch(
        queries, workers=2, mode="process"
    )
    _assert_identical(serial, parallel)


def test_thread_contention_compiles_each_plan_exactly_once(workload):
    graph, queries = workload
    engine = QueryEngine(graph)
    batch = engine.run_batch(queries, workers=WORKERS)
    assert batch.cache_stats.compiles == len(distinct_languages(queries))
    assert batch.cache_stats.evictions == 0
    rerun = engine.run_batch(queries, workers=WORKERS)
    assert rerun.cache_stats.compiles == 0  # fully warm
    assert rerun.cache_stats.hits == len(queries)


def test_parallel_overhead_is_bounded(workload):
    """Even where parallelism cannot win (1 core), it must not explode."""
    skip_if_smoke("scheduling-overhead wall-clock bound")
    graph, queries = workload
    serial_engine = QueryEngine(graph)
    parallel_engine = QueryEngine(graph)
    serial_seconds, _ = measure_seconds(serial_engine.run_batch, queries)
    parallel_seconds, _ = measure_seconds(
        parallel_engine.run_batch, queries, workers=WORKERS
    )
    assert parallel_seconds < 5 * serial_seconds + 0.5, (
        "thread scheduling overhead out of bounds: serial %.3fs, "
        "parallel %.3fs" % (serial_seconds, parallel_seconds)
    )


def test_parallel_speedup_over_serial():
    """>1× wall-clock vs serial on the same workload (needs >1 core)."""
    skip_if_smoke("parallel wall-clock speedup")
    cores = _available_cores()
    if cores < 2:
        pytest.skip(
            "parallel wall-clock speedup needs >1 CPU core, this "
            "machine exposes %d" % cores
        )
    # A heavier instance so per-worker compute dwarfs scheduling costs.
    graph, queries = mixed_workload(
        num_queries=200,
        seed=23,
        num_vertices=400,
        num_edges=1400,
        hot_language=HOT_LANGUAGE,
        hot_every=3,
    )
    mode = _scaling_mode()
    workers = min(WORKERS, cores)
    serial_engine = QueryEngine(graph)
    parallel_engine = QueryEngine(graph)
    # Best of two runs each: one noisy scheduling hiccup must not
    # decide a wall-clock comparison.
    serial_seconds, serial_batch = min(
        (measure_seconds(serial_engine.run_batch, queries)
         for _ in range(2)),
        key=lambda pair: pair[0],
    )
    parallel_seconds, parallel_batch = min(
        (measure_seconds(
            parallel_engine.run_batch, queries, workers=workers, mode=mode
        ) for _ in range(2)),
        key=lambda pair: pair[0],
    )
    _assert_identical(serial_batch, parallel_batch)
    record_metric(
        "parallel_batch", "serial_seconds", round(serial_seconds, 6)
    )
    record_metric(
        "parallel_batch", "parallel_seconds", round(parallel_seconds, 6)
    )
    record_metric(
        "parallel_batch", "parallel_speedup",
        round(serial_seconds / parallel_seconds, 3),
    )
    record_metric("parallel_batch", "workers", workers)
    assert parallel_seconds < serial_seconds, (
        "expected >1x speedup with %d %s workers, got %.2fx "
        "(serial %.3fs, parallel %.3fs)"
        % (
            workers,
            mode,
            serial_seconds / parallel_seconds,
            serial_seconds,
            parallel_seconds,
        )
    )


def test_parallel_batch(benchmark, workload):
    graph, queries = workload
    engine = QueryEngine(graph)
    engine.run_batch(queries)  # warm the plan cache
    batch = benchmark(engine.run_batch, queries, workers=WORKERS)
    assert batch.cache_stats.compiles == 0


def test_serial_batch_baseline(benchmark, workload):
    graph, queries = workload
    engine = QueryEngine(graph)
    engine.run_batch(queries)  # warm the plan cache
    batch = benchmark(engine.run_batch, queries)
    assert batch.cache_stats.compiles == 0
