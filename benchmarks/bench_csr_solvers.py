"""CSR GraphView vs the dict-backed DbGraph path (ISSUE-4 tentpole).

All three solver cores run integer-native over a
:class:`~repro.graphs.view.GraphView`; what differs between the engine
path and the bare-``DbGraph`` path is the *backend*: the engine hands
solvers a frozen :class:`~repro.engine.indexed.CsrView` (precompiled
integer adjacency, label-partitioned forward and reverse CSR), while a
direct solve walks a :class:`~repro.graphs.view.DbGraphView` that
reads through the live dicts, converting names to ids on every
expansion (reference semantics — the price of staying mutable).

Two measurements over seeded mixed-regime workloads (finite / trC /
NP-hard languages, warm plans on BOTH sides, answers asserted
path-for-path identical before any clock starts):

* **static graph** — the pure view effect: same queries, same warm
  plans, unchanged graph.  The CSR view's precompiled arrays beat the
  dict view's per-expansion conversions; the ratio is asserted
  conservatively and recorded in the ``BENCH_csr_solvers.json``
  artifact so the trajectory is tracked across PRs.

* **serving under writes** — the scenario the compiled view exists
  for (see ``repro.engine``'s cost model): the graph takes a
  result-neutral write between queries.  The DbGraph path must
  re-derive its id tables and sorted caches after every mutation,
  while the CSR side amortises one compile across the whole workload
  — the acceptance bar (≥2×) is asserted here, and the measured gap
  is far larger.  Every write adds an edge from a *fresh* vertex, so
  no simple path between pre-existing vertices changes and the
  snapshot-semantics answers stay exactly equal (asserted).

Wall-clock assertions skip under ``REPRO_BENCH_PROFILE=smoke``; the
equality assertions always run.
"""

import time

from benchmarks.conftest import record_metric, scaled, skip_if_smoke
from benchmarks.workloads import distinct_languages, mixed_workload

import pytest

from repro.core.solver import RspqSolver
from repro.engine import IndexedGraph

#: Dense workload: long searches, isolates the pure view effect.
STATIC_SHAPE = dict(
    num_queries=scaled(96, 16),
    num_vertices=scaled(600, 40),
    num_edges=scaled(2000, 120),
)
#: Serving-scale sparse workload: per-write invalidation costs grow
#: with |V| while the searches stay short — the amortisation regime.
WRITES_SHAPE = dict(
    num_queries=scaled(80, 12),
    num_vertices=scaled(3000, 60),
    num_edges=scaled(7500, 150),
)
#: Timed repetitions per side (min is reported, warm-up not counted).
REPS = scaled(3, 1)


def _workload(shape):
    """Seeded mixed-regime workload plus warm plans for every language."""
    graph, queries = mixed_workload(seed=17, **shape)
    solvers = {
        language: RspqSolver(language)
        for language in distinct_languages(queries)
    }
    return graph, queries, solvers


@pytest.fixture(scope="module")
def static_workload():
    return _workload(STATIC_SHAPE)


@pytest.fixture(scope="module")
def writes_workload():
    return _workload(WRITES_SHAPE)


def _run(solvers, queries, target):
    return [
        solvers[language].shortest_simple_path(target, source, goal)
        for language, source, goal in queries
    ]


def _assert_paths_identical(reference, candidate, queries):
    for query, expected, got in zip(queries, reference, candidate):
        assert (expected is None) == (got is None), query
        if expected is not None:
            assert got.vertices == expected.vertices, query
            assert got.labels == expected.labels, query


def test_static_graph_csr_beats_dict_view(static_workload):
    graph, queries, solvers = static_workload
    view = IndexedGraph(graph).view()

    db_results = _run(solvers, queries, graph)       # warm-up + oracle
    csr_results = _run(solvers, queries, view)
    _assert_paths_identical(db_results, csr_results, queries)

    db_seconds = min(
        _measure(_run, solvers, queries, graph) for _ in range(REPS)
    )
    csr_seconds = min(
        _measure(_run, solvers, queries, view) for _ in range(REPS)
    )
    speedup = db_seconds / csr_seconds if csr_seconds else float("inf")
    record_metric("csr_solvers", "static_db_seconds", round(db_seconds, 6))
    record_metric("csr_solvers", "static_csr_seconds", round(csr_seconds, 6))
    record_metric("csr_solvers", "static_speedup", round(speedup, 3))
    skip_if_smoke()
    # The pure view effect on an unchanged graph: conservative floor
    # (measured ~1.9x on the full profile; both sides share the same
    # integer-native search cores, so the gap is adjacency access only).
    assert speedup >= 1.3, (db_seconds, csr_seconds)


def _measure(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def _mutating_db_pass(pristine, queries, solvers):
    """The DbGraph path under writes: one result-neutral write per query.

    Each write hangs an edge off a *fresh* vertex, so no simple path
    between pre-existing vertices gains or loses a candidate — but the
    graph's sorted caches and its id-table view are invalidated
    wholesale, exactly as any real write would.
    """
    graph = pristine.copy()
    anchor = next(iter(graph.vertices()))
    results = []
    start = time.perf_counter()
    for language, source, goal in queries:
        graph.add_edge(graph.fresh_vertex(), "a", anchor)
        results.append(
            solvers[language].shortest_simple_path(graph, source, goal)
        )
    return time.perf_counter() - start, results


def test_serving_under_writes_csr_speedup_at_least_2x(writes_workload):
    graph, queries, solvers = writes_workload

    # CSR side: the view was compiled at registration (or thawed from a
    # snapshot) before the workload arrives — warm-start serving — so
    # the timed pass is pure solving, like the warm plans it rides on.
    view = IndexedGraph(graph).view()

    def csr_pass():
        return _run(solvers, queries, view)

    csr_results = csr_pass()  # warm-up + oracle
    _db_seconds, db_results = _mutating_db_pass(graph, queries, solvers)
    # Snapshot semantics: the writes are result-neutral by construction,
    # so the compiled view's answers match the live graph's exactly.
    _assert_paths_identical(db_results, csr_results, queries)

    db_seconds = min(
        _mutating_db_pass(graph, queries, solvers)[0] for _ in range(REPS)
    )
    csr_seconds = min(_measure(csr_pass) for _ in range(REPS))
    speedup = db_seconds / csr_seconds if csr_seconds else float("inf")
    record_metric("csr_solvers", "writes_db_seconds", round(db_seconds, 6))
    record_metric("csr_solvers", "writes_csr_seconds", round(csr_seconds, 6))
    record_metric("csr_solvers", "writes_speedup", round(speedup, 3))
    skip_if_smoke()
    # The acceptance bar: warm-plan CSR-backed solving at least 2x the
    # DbGraph path on a mixed workload (measured far higher here).
    assert speedup >= 2.0, (db_seconds, csr_seconds)
