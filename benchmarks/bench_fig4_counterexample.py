"""E5 — Figure 4 (Example 4): the loop-elimination counterexample.

The family where naive loop removal fails: an L-labeled walk exists
whose two self-intersections cannot both be eliminated, yet a simple
L-labeled path exists (cutting across the middle).  We assert the
naive strategy fails, the nice-path solver succeeds, and measure its
scaling over k.
"""

import pytest

from repro import language
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.graphs.generators import figure4_graph
from repro.graphs.product import shortest_walk

EXAMPLE1 = "a*(bb^+ + eps)c*"


def _remove_loops(path):
    """Naive loop elimination: cut cycles greedily left to right."""
    from repro.graphs.dbgraph import Path

    vertices = list(path.vertices)
    labels = list(path.labels)
    position = 0
    seen = {}
    while position < len(vertices):
        vertex = vertices[position]
        if vertex in seen:
            start = seen[vertex]
            del vertices[start:position]
            del labels[start:position]
            seen = {v: i for i, v in enumerate(vertices[: start + 1])}
            position = start + 1
            continue
        seen[vertex] = position
        position += 1
    return Path(tuple(vertices), tuple(labels))


def _figure4_walk(graph, x, y, k):
    """The paper's Figure-4 walk: the full a-run, b-run, then c-run.

    It crosses itself at the middles x_k and y_k of the a- and c-chains.
    """
    from repro.graphs.dbgraph import Path

    vertices = [x]
    labels = []
    for stretch, label in ((2 * k, "a"), (2 * k, "b"), (2 * k, "c")):
        for _ in range(stretch):
            (nxt,) = graph.successors(vertices[-1], label)
            vertices.append(nxt)
            labels.append(label)
    assert vertices[-1] == y
    return Path(tuple(vertices), tuple(labels))


def test_naive_loop_elimination_fails():
    lang = language(EXAMPLE1)
    k = 3
    graph, x, y = figure4_graph(k)
    walk = _figure4_walk(graph, x, y, k)
    assert lang.accepts(walk.word)
    assert not walk.is_simple()  # self-intersects at x_k and y_k
    cut = _remove_loops(walk)
    assert cut.is_simple()
    # ... but the label left after loop removal is outside L (the
    # Example-4 point: you cannot cut both loops and stay in L).
    assert not lang.accepts(cut.word)


def test_faithful_family_is_a_negative_instance():
    # An L-labeled *walk* exists, yet no simple L-labeled path does:
    # a solver based on naive loop removal would answer wrongly here.
    lang = language(EXAMPLE1)
    for k in (2, 3, 4):
        graph, x, y = figure4_graph(k)
        assert shortest_walk(graph, lang.dfa, x, y) is not None
        assert ExactSolver(lang).shortest_simple_path(graph, x, y) is None
        assert TractableSolver(lang).shortest_simple_path(graph, x, y) is None


@pytest.mark.parametrize("k", [3, 6, 12])
def test_nice_path_solver_on_cross_family(benchmark, k):
    from repro.graphs.generators import figure4_cross_graph

    lang = language(EXAMPLE1)
    graph, x, y = figure4_cross_graph(k)
    solver = TractableSolver(lang)

    path = benchmark(solver.shortest_simple_path, graph, x, y)
    assert path is not None
    assert path.is_simple()
    assert lang.accepts(path.word)
    assert len(path) == 3 * k  # the cut-across route a^k b^k c^k


def test_cross_family_answer_matches_exact():
    from repro.graphs.generators import figure4_cross_graph

    lang = language(EXAMPLE1)
    for k in (2, 4, 6):
        graph, x, y = figure4_cross_graph(k)
        mine = TractableSolver(lang).shortest_simple_path(graph, x, y)
        truth = ExactSolver(lang).shortest_simple_path(graph, x, y)
        assert mine is not None and truth is not None
        assert len(mine) == len(truth)
