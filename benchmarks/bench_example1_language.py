"""E3 — Example 1: a*(bb⁺ + ε)c* is tractable though a*bc* is not.

Measures the polynomial solver on growing random graphs and asserts
the paper's punchline: the same instances defeat no one for the
Example-1 language, while its NP-complete neighbour a*bc* must fall
back to exponential search.
"""

import pytest

from benchmarks.conftest import growth_ratios, measure_seconds, skip_if_smoke

from repro import classify, language
from repro.core.nice_paths import TractableSolver
from repro.graphs.generators import random_labeled_graph

EXAMPLE1 = "a*(bb^+ + eps)c*"
HARD_NEIGHBOUR = "a*bc*"


def test_example1_is_tractable_and_neighbour_is_not():
    assert classify(language(EXAMPLE1).dfa).is_tractable()
    assert not classify(language(HARD_NEIGHBOUR).dfa).is_tractable()


@pytest.mark.parametrize("n", [30, 60, 120])
def test_solver_scaling(benchmark, n):
    lang = language(EXAMPLE1)
    solver = TractableSolver(lang)
    graph = random_labeled_graph(n, 2 * n, "abc", seed=n)

    def query():
        return solver.shortest_simple_path(graph, 0, n - 1)

    path = benchmark(query)
    if path is not None:
        assert lang.accepts(path.word)


def test_polynomial_growth_shape():
    """Runtime grows polynomially: doubling n must not explode."""
    skip_if_smoke("growth-ratio wall-clock comparison")
    lang = language(EXAMPLE1)
    solver = TractableSolver(lang)
    sizes = [40, 80, 160]
    times = []
    for n in sizes:
        graph = random_labeled_graph(n, 2 * n, "abc", seed=11)
        seconds, _ = measure_seconds(
            solver.shortest_simple_path, graph, 0, n - 1
        )
        times.append(max(seconds, 1e-6))
    for size_ratio, time_ratio in growth_ratios(sizes, times):
        # Allow up to ~cubic growth plus generous noise.
        assert time_ratio <= size_ratio ** 3 * 12, (sizes, times)


def test_example1_case_analysis(benchmark):
    """The worked Example-1 case split on one structured instance."""
    from repro.graphs.generators import component_chain_graph

    lang = language(EXAMPLE1)
    solver = TractableSolver(lang)
    graph, x, y = component_chain_graph(
        ["aaaa", "bbb", "cccc"], detour_density=0.5, seed=5
    )
    path = benchmark(solver.shortest_simple_path, graph, x, y)
    assert path is not None
    assert lang.accepts(path.word)
