"""E4 — Figures 2/3 (Examples 2/3): summaries and nice paths.

Reconstructs the paper's Example-2 summary (with the illustrative
bound N = 3), and benchmarks the solver on growing component-chain
graphs of the Figure-3 shape.
"""

import pytest

from repro import language
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.summary import GapMarker, summarize
from repro.graphs.dbgraph import Path
from repro.graphs.generators import component_chain_graph, figure3_graph

EXAMPLE2 = "a(c{2,} + eps)(a+b)*(ac)?a*"

FIG3_VERTICES = tuple("v%d" % i for i in range(1, 16))
FIG3_LABELS = ("a", "c", "c", "c", "c", "c", "c", "c", "a", "b", "b", "b",
               "a", "a")


def test_example2_summary(benchmark):
    lang = language(EXAMPLE2)
    path = Path(FIG3_VERTICES, FIG3_LABELS)

    summary = benchmark(summarize, path, lang.dfa, 3)
    markers = [e for e in summary.elements if isinstance(e, GapMarker)]
    # Two long-run components: the c-loop and the (a+b)-loop.
    assert [m.symbols for m in markers] == [frozenset("c"), frozenset("ab")]


def test_figure3_nice_path(benchmark):
    lang = language(EXAMPLE2)
    graph, x, y = figure3_graph()
    solver = TractableSolver(lang)

    path = benchmark(solver.shortest_simple_path, graph, x, y)
    exact = ExactSolver(lang).shortest_simple_path(graph, x, y)
    assert path is not None
    assert len(path) == len(exact)


@pytest.mark.parametrize("scale", [2, 4, 8])
def test_component_chain_scaling(benchmark, scale):
    lang = language(EXAMPLE2)
    solver = TractableSolver(lang)
    graph, x, y = component_chain_graph(
        ["a", "c" * (2 * scale), "b" * scale, "a" * scale],
        detour_density=0.4,
        seed=scale,
    )

    path = benchmark(solver.shortest_simple_path, graph, x, y)
    if path is not None:
        assert lang.accepts(path.word)
