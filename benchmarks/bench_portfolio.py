"""The hard-regime portfolio vs exact-only serving (ISSUE-8).

Two workload families against the same engine API:

* **Bounded hard negatives** — parity-gadget chains (the Theorem 7
  k-RSPQ regime): every simple source→target route is odd, so the
  ``(aa)*`` query is a hard "no", and a self-loop keeps walk-level
  parity alive, defeating liveness pruning.  With a path-length bound
  below the gadget width the portfolio's walk probe *certifies*
  NOT_FOUND in polynomial time, while the exact-only path must still
  enumerate the ``2^width`` arm combinations to find (the absence of)
  a shortest simple path before applying the bound.
* **Probabilistic negatives** — padded odd-cycle gadgets where an
  accepting walk exists but no simple path does: the calibrated
  color-coding rung and the algebraic rung both complete, serving a
  NOT_FOUND with a δ² combined failure bound instead of paying for
  backtracking.

Asserted shape (the ISSUE-8 acceptance criteria):

* portfolio answers match exact ground truth on every query of both
  families — measured success rate ≥ 0.999 (here: 1.0);
* on the bounded family the portfolio engine beats the exact-only
  engine by ≥ 5× wall-clock (recorded as ``portfolio_speedup`` and
  gated by ``check_perf_regression.py``).
"""

import pytest

from benchmarks.conftest import (
    measure_seconds,
    record_metric,
    scaled,
)

from repro.algorithms.exact import ExactSolver
from repro.engine import (
    CONFIDENCE_CERTIFIED,
    CONFIDENCE_PROBABILISTIC,
    QueryEngine,
)
from repro.graphs.dbgraph import DbGraph
from repro.languages import language

HARD = "(aa)*"

#: Diamond-chain width of the bounded family (odd: all routes odd).
WIDTH = scaled(13, 11)

#: Timed repetitions of each batch (caches disabled, so every
#: repetition re-solves; amortises timer noise on the smoke profile).
REPS = scaled(3, 5)


def parity_gadget_into(graph, gadget_id, width):
    """One diamond chain with odd arms and parity-flipping self-loops.

    Returns the ``(source, target)`` pair.  Every simple route has odd
    length (arms of length 1 and 3), so ``(aa)*`` has no simple path;
    self-loops let walks flip parity from any base, keeping every
    search node alive for the exact solver.
    """
    for i in range(width):
        base, nxt = (gadget_id, "d", i), (gadget_id, "d", i + 1)
        graph.add_edge(base, "a", base)
        graph.add_edge(base, "a", nxt)
        u, v = (gadget_id, "u", i), (gadget_id, "v", i)
        graph.add_edge(base, "a", u)
        graph.add_edge(u, "a", v)
        graph.add_edge(v, "a", nxt)
    return (gadget_id, "d", 0), (gadget_id, "d", width)


@pytest.fixture(scope="module")
def bounded_workload():
    """Gadget copies plus even positive chains, and the length bound.

    The bound ``WIDTH - 1`` undercuts every source→target walk (all
    have ≥ WIDTH edges), so the walk probe certifies the negatives;
    the positive chains answer through the same bounded path.
    """
    graph = DbGraph()
    queries = []
    for gadget_id in range(3):
        x, y = parity_gadget_into(graph, gadget_id, WIDTH)
        queries.append((HARD, x, y))
    for gadget_id in range(3):
        previous = (gadget_id, "p", 0)
        for i in range(1, 7):
            current = (gadget_id, "p", i)
            graph.add_edge(previous, "a", current)
            previous = current
        queries.append((HARD, (gadget_id, "p", 0), (gadget_id, "p", 6)))
    return graph, queries, WIDTH - 1


def probabilistic_gadget():
    """Odd a-cycle with padding: accepting walk, no simple path.

    The ``(aa)*`` walk 0-1-2-3-1-2-4 (6 edges) revisits vertices; the
    only simple route 0-1-2-4 is odd.  Padding vertices raise the
    simple-path cap to 6 so the walk probe cannot certify, and both
    randomized rungs run to completion.
    """
    graph = DbGraph()
    for u, l, v in [
        (0, "a", 1), (1, "a", 2), (2, "a", 3), (3, "a", 1), (2, "a", 4),
    ]:
        graph.add_edge(u, l, v)
    graph.add_vertex(5)
    graph.add_vertex(6)
    return graph


def _engine(graph, portfolio):
    # Result cache off so repetitions re-solve; vectorize off so the
    # timing isolates the solver path, identically for both engines.
    return QueryEngine(
        graph, result_cache=False, vectorize=False, portfolio=portfolio
    )


def _timed_batches(engine, queries, bound):
    def run():
        batch = None
        for _ in range(REPS):
            batch = engine.run_batch(queries, max_path_edges=bound)
        return batch

    return measure_seconds(run)


def test_portfolio_matches_exact_on_both_families(bounded_workload):
    graph, queries, bound = bounded_workload
    exact = ExactSolver(language(HARD))
    routed = _engine(graph, portfolio=True)
    batch = routed.run_batch(queries, max_path_edges=bound)
    correct = 0
    for (_regex, x, y), result in zip(queries, batch.results):
        truth = exact.shortest_simple_path(graph, x, y)
        if truth is not None and len(truth) > bound:
            truth = None
        correct += result.found == (truth is not None)
        assert result.confidence == CONFIDENCE_CERTIFIED, (x, y)
    success_rate = correct / len(queries)
    record_metric("portfolio", "bounded_success_rate", success_rate)
    assert success_rate >= 0.999


def test_bounded_hard_negatives_speedup(bounded_workload):
    graph, queries, bound = bounded_workload
    classic = _engine(graph, portfolio=False)
    routed = _engine(graph, portfolio=True)
    # Warm both plan caches so the measurement is solve-only.
    classic.run_batch(queries, max_path_edges=bound)
    routed.run_batch(queries, max_path_edges=bound)
    classic_seconds, classic_batch = _timed_batches(
        classic, queries, bound
    )
    portfolio_seconds, portfolio_batch = _timed_batches(
        routed, queries, bound
    )
    assert [r.found for r in classic_batch.results] == (
        [r.found for r in portfolio_batch.results]
    )
    speedup = classic_seconds / portfolio_seconds
    record_metric(
        "portfolio", "exact_only_seconds", round(classic_seconds, 6)
    )
    record_metric(
        "portfolio", "portfolio_seconds", round(portfolio_seconds, 6)
    )
    record_metric("portfolio", "portfolio_speedup", round(speedup, 3))
    assert speedup >= 5.0, (
        "expected >= 5x over exact-only serving, got %.1fx "
        "(portfolio %.4fs, exact %.4fs)"
        % (speedup, portfolio_seconds, classic_seconds)
    )


def test_probabilistic_rungs_serve_unbounded_negatives():
    graph = probabilistic_gadget()
    engine = QueryEngine(graph, portfolio=True, result_cache=False)
    result = engine.query(HARD, 0, 4)
    assert not result.found
    assert result.confidence == CONFIDENCE_PROBABILISTIC
    # Color rung complete and algebraic negative: δ² combined bound.
    assert result.failure_bound == pytest.approx(1e-6)
    truth = ExactSolver(language(HARD)).shortest_simple_path(graph, 0, 4)
    assert truth is None  # the probabilistic answer is also correct
    record_metric(
        "portfolio", "probabilistic_failure_bound", result.failure_bound
    )


def test_bounded_batch_portfolio(benchmark, bounded_workload):
    graph, queries, bound = bounded_workload
    engine = _engine(graph, portfolio=True)
    engine.run_batch(queries, max_path_edges=bound)  # warm plans
    batch = benchmark(engine.run_batch, queries, max_path_edges=bound)
    assert batch.found_count == 3


def test_bounded_batch_exact_only(benchmark, bounded_workload):
    graph, queries, bound = bounded_workload
    engine = _engine(graph, portfolio=False)
    engine.run_batch(queries, max_path_edges=bound)  # warm plans
    batch = benchmark(engine.run_batch, queries, max_path_edges=bound)
    assert batch.found_count == 3
