"""Workload realism — RSPQs on scale-free social networks.

The introduction names social networks among RSPQ applications; this
bench runs the dispatching solver over Barabási–Albert topologies with
skewed relation labels ('f' = follows, 'k' = knows), measuring the
tractable path ("friend chain with at most one in-person hop",
``f*(k + ε)f*``) against hub-heavy graph growth, plus the exact
fallback for a hard query on the same graphs.
"""

import pytest

from repro import language
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.solver import RspqSolver, STRATEGY_TRACTABLE
from repro.graphs.generators import scale_free_social_graph

FRIEND_CHAIN = "f*(k + eps)f*"
HARD_QUERY = "f*kf*"  # mandatory in-person hop: a*ba* in disguise


@pytest.mark.parametrize("n", [50, 100, 200])
def test_friend_chain_scaling(benchmark, n):
    graph = scale_free_social_graph(n, seed=n)
    solver = TractableSolver(language(FRIEND_CHAIN))
    benchmark(solver.shortest_simple_path, graph, 0, n - 1)


def test_dispatch_on_social_queries(benchmark):
    graph = scale_free_social_graph(60, seed=2)
    solver = RspqSolver(language(FRIEND_CHAIN))
    assert solver.strategy == STRATEGY_TRACTABLE

    def run():
        return [
            solver.shortest_simple_path(graph, 0, target)
            for target in (10, 20, 30, 40, 50)
        ]

    paths = benchmark(run)
    hits = [p for p in paths if p is not None]
    benchmark.extra_info["reachable_targets"] = len(hits)
    for path in hits:
        assert path.is_simple()


def test_hard_query_exact_fallback(benchmark):
    graph = scale_free_social_graph(30, seed=3)
    lang = language(HARD_QUERY)
    solver = ExactSolver(lang)

    path = benchmark(solver.shortest_simple_path, graph, 0, 29)
    if path is not None:
        assert path.word.count("k") == 1


def test_tractable_matches_exact_on_social_graphs():
    lang = language(FRIEND_CHAIN)
    fast = TractableSolver(lang)
    slow = ExactSolver(lang)
    for seed in range(6):
        graph = scale_free_social_graph(14, seed=seed)
        for target in (5, 9, 13):
            a = fast.shortest_simple_path(graph, 0, target)
            b = slow.shortest_simple_path(graph, 0, target)
            assert (a is None) == (b is None)
            if a is not None:
                assert len(a) == len(b)
