"""Ablations for the tractable solver's design choices (DESIGN.md §3).

Two knobs the anchored-search rendition of the paper's NL algorithm
adds on top of the theory:

* the *live-table prune* (sequence-NFA × graph product reachability) —
  disabling it must not change answers, only work;
* the *weighted generalisation* (Dijkstra gap filling) — the paper's
  E → R+ remark; costs a little over BFS.
"""

import pytest

from repro import language
from repro.core.nice_paths import TractableSolver, path_weight
from repro.graphs.generators import random_labeled_graph

LANGUAGE = "a*(bb^+ + eps)c*"


def _weight_fn(u, label, v):
    return 1 + (hash((u, label, v)) % 5)


@pytest.mark.parametrize("pruning", [True, False], ids=["pruned", "unpruned"])
def test_live_pruning_ablation(benchmark, pruning):
    lang = language(LANGUAGE)
    solver = TractableSolver(lang, use_live_pruning=pruning)
    graph = random_labeled_graph(60, 150, "abc", seed=21)

    path = benchmark(solver.shortest_simple_path, graph, 0, 59)
    benchmark.extra_info["dfs_steps"] = solver.last_stats.dfs_steps
    if path is not None:
        assert lang.accepts(path.word)


def test_pruning_work_reduction():
    lang = language(LANGUAGE)
    graph = random_labeled_graph(60, 150, "abc", seed=21)
    fast = TractableSolver(lang)
    slow = TractableSolver(lang, use_live_pruning=False)
    fast.shortest_simple_path(graph, 0, 59)
    slow.shortest_simple_path(graph, 0, 59)
    assert fast.last_stats.dfs_steps <= slow.last_stats.dfs_steps


@pytest.mark.parametrize("weighted", [False, True], ids=["edges", "weights"])
def test_weighted_gap_filling(benchmark, weighted):
    lang = language(LANGUAGE)
    solver = TractableSolver(lang)
    graph = random_labeled_graph(50, 130, "abc", seed=8)
    weight_fn = _weight_fn if weighted else None

    path = benchmark(
        solver.shortest_simple_path, graph, 0, 49, weight_fn
    )
    if path is not None and weighted:
        assert path_weight(path, _weight_fn) >= len(path)
