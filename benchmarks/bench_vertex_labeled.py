"""E10 — vertex-labeled graphs (Section 4.1, Theorems 5-6).

The paper's discriminating examples: a*bc* and (ab)* drop from
NP-complete to polynomial when the graph is vertex-labeled, while
a*ba* and (aa)* stay NP-complete.  We benchmark the trC_vlg
recognizer and vl-graph query evaluation.
"""

import pytest

from repro import language
from repro.core.vlg import is_in_trc_vlg, solve_vlg
from repro.graphs.generators import random_vl_graph

PAPER_TABLE = [
    ("a*bc*", True),
    ("(ab)*", True),
    ("a*ba*", False),
    ("(aa)*", False),
]


def test_vlg_classification_table(benchmark):
    langs = [(text, language(text)) for text, _e in PAPER_TABLE]

    def classify_all():
        return [(text, is_in_trc_vlg(lang.dfa)) for text, lang in langs]

    rows = benchmark(classify_all)
    assert rows == PAPER_TABLE
    benchmark.extra_info["table"] = [
        "%s | trC_vlg=%s" % row for row in rows
    ]


@pytest.mark.parametrize("text,expected", PAPER_TABLE,
                         ids=[t for t, _e in PAPER_TABLE])
def test_single_vlg_membership(benchmark, text, expected):
    lang = language(text)
    assert benchmark(is_in_trc_vlg, lang.dfa) is expected


@pytest.mark.parametrize("n", [10, 20, 40])
def test_vl_graph_query(benchmark, n):
    graph = random_vl_graph(n, 3 * n, "ab", seed=n)
    lang = language("a(ba)*")  # alternation: trC_vlg
    vertices = list(graph.vertices())
    a_starts = [v for v in vertices if graph.label_of(v) == "a"]
    if not a_starts:
        pytest.skip("no a-labeled vertex in this seed")
    source = a_starts[0]
    target = vertices[-1]
    result = benchmark(solve_vlg, lang, graph, source, target)
    if result.found:
        # Check the vertex word against the language.
        word = graph.label_of(source) + "".join(
            graph.label_of(v) for v in result.path.vertices[1:]
        )
        assert lang.accepts(word)


def test_vlg_vs_dbgraph_divergence():
    # (ab)* is NP-complete on edge-labeled graphs but its vl-graph
    # evaluation here goes through the (tractable) quotient machinery
    # whenever the quotient lands in trC; at minimum the classification
    # tables must diverge exactly as the paper states.
    from repro.core.trc import is_in_trc

    for text, vlg_tractable in PAPER_TABLE:
        lang = language(text)
        db_tractable = is_in_trc(lang.dfa)
        assert not db_tractable  # all four are NP-complete on db-graphs
        assert is_in_trc_vlg(lang.dfa) is vlg_tractable
