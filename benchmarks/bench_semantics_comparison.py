"""E13 — walk vs trail vs simple-path semantics (introduction).

Quantifies, on a random-graph population, how often the three
semantics disagree for the paper's motivating languages, and measures
the cost gap between the polynomial walk evaluation and the
backtracking trail/simple evaluations.
"""

import pytest

from repro import language
from repro.algorithms.semantics import (
    SIMPLE,
    TRAIL,
    WALK,
    SemanticsEvaluator,
)
from repro.graphs.generators import labeled_cycle, random_labeled_graph


def _population(num, seed0=0):
    instances = []
    for seed in range(num):
        graph = random_labeled_graph(8, 20, "ab", seed=seed0 + seed)
        instances.append((graph, seed % 8, (seed + 3) % 8))
    return instances


@pytest.mark.parametrize("regex", ["(aa)*", "a*ba*"], ids=["even", "aba"])
def test_disagreement_rates(benchmark, regex):
    evaluator = SemanticsEvaluator(language(regex))
    instances = _population(12)

    def run():
        walk_only = trail_only = agree = 0
        for graph, x, y in instances:
            answers = evaluator.evaluate_all(graph, x, y)
            if answers[WALK] and not answers[TRAIL]:
                walk_only += 1
            elif answers[TRAIL] and not answers[SIMPLE]:
                trail_only += 1
            else:
                agree += 1
        return walk_only, trail_only, agree

    walk_only, trail_only, agree = benchmark(run)
    assert walk_only + trail_only + agree == len(instances)
    benchmark.extra_info["walk_only"] = walk_only
    benchmark.extra_info["trail_only"] = trail_only


def test_canonical_separation_instance():
    # (aa)* on an odd cycle: walk yes, simple no — the intro's gap.
    graph = labeled_cycle("aaa")
    evaluator = SemanticsEvaluator(language("(aa)*"))
    answers = evaluator.evaluate_all(graph, 0, 1)
    assert answers[WALK] and not answers[SIMPLE]


@pytest.mark.parametrize("semantics", [WALK, TRAIL, SIMPLE])
def test_evaluation_cost_by_semantics(benchmark, semantics):
    evaluator = SemanticsEvaluator(language("(aa)*"))
    graph = random_labeled_graph(14, 40, "ab", seed=5)
    benchmark(evaluator.exists, graph, 0, 13, semantics)


def test_walk_counting_explosion(benchmark):
    # Counting walks is polynomial per length but the counts themselves
    # explode — the "yottabyte" observation.
    evaluator = SemanticsEvaluator(language("(a+b)*"))
    graph = random_labeled_graph(10, 40, "ab", seed=2)

    def run():
        return evaluator.count_walks(graph, 0, 9, 12)

    count = benchmark(run)
    benchmark.extra_info["walk_count"] = count
