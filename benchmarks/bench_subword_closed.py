"""E14 — the Mendelzon-Wood fragment vs trC.

The prior tractable class (subword-closed languages = trC(0)) is a
*strict* subset of trC: Example 1's language separates them.  We
benchmark both membership tests over the catalog and solve queries for
a language in the gap.
"""

import pytest

from repro import catalog, language
from repro.core.nice_paths import TractableSolver
from repro.core.trc import is_in_trc, is_in_trc_zero
from repro.graphs.generators import random_labeled_graph


def test_fragment_tables(benchmark):
    langs = [(e, e.language().dfa) for e in catalog.entries()]

    def run():
        return [
            (entry.name, is_in_trc_zero(dfa), is_in_trc(dfa))
            for entry, dfa in langs
        ]

    rows = benchmark(run)
    for name, subword, trc in rows:
        entry = catalog.by_name(name)
        assert subword is entry.subword_closed
        assert trc is entry.in_trc
        # Mendelzon-Wood ⊆ trC.
        if subword:
            assert trc


def test_strictness_witness():
    lang = language("a*(bb^+ + eps)c*")
    assert is_in_trc(lang.dfa)
    assert not is_in_trc_zero(lang.dfa)


@pytest.mark.parametrize("regex", ["a*c*", "a*(bb^+ + eps)c*"],
                         ids=["mw-fragment", "gap-language"])
def test_solving_inside_and_beyond_mw(benchmark, regex):
    lang = language(regex)
    solver = TractableSolver(lang)
    graph = random_labeled_graph(60, 150, "abc", seed=17)
    benchmark(solver.shortest_simple_path, graph, 0, 59)


@pytest.mark.parametrize("entry", catalog.entries(), ids=lambda e: e.name)
def test_subword_membership_cost(benchmark, entry):
    dfa = entry.language().dfa
    assert benchmark(is_in_trc_zero, dfa) is entry.subword_closed
