"""Service tier: snapshot warm-start + live-server differential load.

Two claims of the serving layer (the ISSUE-3 acceptance criteria):

* **Warm-start beats recompiling.**  Loading a persisted compiled
  graph (:func:`repro.service.load_snapshot`) must be measurably
  faster than compiling the same :class:`IndexedGraph` from its
  ``DbGraph`` — the snapshot stores the *result* of the per-vertex
  repr-sorts, so a thaw is pure array reads.  Asserted best-of-5 with
  a 1.2× gap.
* **The service changes no answers.**  A load-generator run against a
  live ``repro serve`` instance (real sockets, JSON codec, admission
  control, thread-pool dispatch) must return results **path-for-path
  identical** to direct :func:`solve_rspq` calls — for a compiled
  registration and for a snapshot warm-started one alike.
* **Pre-fork serving scales past the GIL.**  A
  :class:`~repro.service.WorkerPool` of N processes attached to one
  shared snapshot must lift batch throughput with N (``≥2.5×`` at 4
  workers, asserted only on machines that actually have 4 cores) while
  per-worker RSS stays near-flat — the mmapped graph is shared, not
  copied.  ``scaling_efficiency`` (= throughput(4) / throughput(1) / 4)
  lands in ``BENCH_service.json`` and is gated by
  ``check_perf_regression.py``.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import (
    measure_seconds,
    record_metric,
    scaled,
    skip_if_smoke,
)
from benchmarks.workloads import mixed_workload, random_regexes

from repro.core.solver import STRATEGY_EXACT, RspqSolver
from repro.engine import IndexedGraph
from repro.graphs.generators import random_labeled_graph
from repro.service import (
    GraphRegistry,
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    load_snapshot,
    run_load,
    save_snapshot,
    verify_against_direct,
)

#: Graph size for the warm-start measurement (big enough that the
#: compile pass's sorting dominates noise).
NUM_VERTICES = scaled(1500, 60)
NUM_EDGES = scaled(6000, 180)

#: Load-generator workload against the live server.
NUM_QUERIES = scaled(120, 24)


@pytest.fixture(scope="module")
def big_graph():
    return random_labeled_graph(NUM_VERTICES, NUM_EDGES, "abc", seed=7)


@pytest.fixture(scope="module")
def workload():
    graph, queries = mixed_workload(
        num_queries=NUM_QUERIES, seed=31, num_vertices=40, num_edges=130
    )
    # Widen beyond the curated rotation: seeded random regexes over the
    # same alphabet, endpoints reused from the seeded queries.  Only
    # polynomial strategies are admitted at this graph size — random
    # exact-strategy languages get their differential coverage on the
    # small graphs of tests/test_hypothesis_solvers.py, where the
    # exponential oracle is affordable (the curated HARD_LANGUAGES in
    # the mixed workload keep the exact path exercised here).
    wanted = scaled(16, 6)
    extras = []
    for regex in random_regexes(4 * wanted, seed=77, max_depth=2):
        if RspqSolver(regex).strategy == STRATEGY_EXACT:
            continue
        index = len(extras)
        extras.append((
            regex,
            queries[index % len(queries)][1],
            queries[index % len(queries)][2],
        ))
        if len(extras) == wanted:
            break
    assert len(extras) == wanted
    return graph, queries + extras


def test_snapshot_roundtrip_is_exact(tmp_path, big_graph):
    indexed = IndexedGraph(big_graph)
    path = str(tmp_path / "big.snap")
    save_snapshot(indexed, path)
    thawed = load_snapshot(path)
    assert list(thawed.vertices()) == list(indexed.vertices())
    assert list(thawed.edges()) == list(indexed.edges())
    assert thawed.num_edges == indexed.num_edges
    assert thawed.labels() == indexed.labels()


def test_snapshot_warm_start_faster_than_recompile(tmp_path, big_graph):
    indexed = IndexedGraph(big_graph)
    path = str(tmp_path / "big.snap")
    save_snapshot(indexed, path)
    compile_seconds = min(
        measure_seconds(IndexedGraph, big_graph)[0] for _ in range(5)
    )
    load_seconds = min(
        measure_seconds(load_snapshot, path)[0] for _ in range(5)
    )
    record_metric("service", "compile_seconds", round(compile_seconds, 6))
    record_metric("service", "thaw_seconds", round(load_seconds, 6))
    record_metric(
        "service", "thaw_speedup", round(compile_seconds / load_seconds, 3)
    )
    skip_if_smoke("warm-start timing comparison")
    assert load_seconds * 1.2 < compile_seconds, (
        "snapshot load (%.4fs) should beat recompilation (%.4fs) by "
        ">=1.2x" % (load_seconds, compile_seconds)
    )


#: Pool-scaling workload: enough per-batch solver work that the fork
#: and pipe overheads amortise away.
POOL_QUERIES = scaled(320, 32)
POOL_WORKER_STEPS = (1, 2, 4)


def _pool_workload(graph, count):
    """Polynomial-strategy queries spread over the big graph."""
    import random

    rng = random.Random(5)
    vertices = list(graph.vertices())
    rotation = ["a*bc*", "a*(bb^+ + eps)c*", "ab + ba", "(ab)^+", "c*a*"]
    return [
        (
            rotation[index % len(rotation)],
            rng.choice(vertices),
            rng.choice(vertices),
        )
        for index in range(count)
    ]


def test_worker_pool_scaling(tmp_path, big_graph):
    from repro.engine import QueryEngine
    from repro.service import WorkerPool

    indexed = IndexedGraph(big_graph)
    path = str(tmp_path / "pool.snap")
    save_snapshot(indexed, path)
    queries = _pool_workload(big_graph, POOL_QUERIES)
    # The result cache is off so repeated languages are re-solved: the
    # measurement is solver throughput, not cache replay.
    engine_kwargs = {"result_cache": False}
    expected = QueryEngine(indexed, result_cache=False).run_batch(
        queries, vectorize=False
    )
    throughput = {}
    rss_mb = []
    for workers in POOL_WORKER_STEPS:
        with WorkerPool(path, engine_kwargs=engine_kwargs,
                        workers=workers) as pool:
            pool.run_batch(queries[:8], vectorize=False)  # warm plans
            # Best-of-3: one slow scheduler wakeup must not poison a
            # gated ratio (1-core smoke runs sit entirely in overhead).
            seconds = float("inf")
            for _ in range(3):
                run_seconds, batch = measure_seconds(
                    pool.run_batch, queries, vectorize=False
                )
                seconds = min(seconds, run_seconds)
            throughput[workers] = len(queries) / seconds
            if workers == max(POOL_WORKER_STEPS):
                for served, direct in zip(batch.results, expected.results):
                    assert served.found == direct.found
                    assert served.path == direct.path
                rss_mb = [
                    block["rss_mb"]
                    for block in pool.stats()["per_worker"]
                    if block["rss_mb"] is not None
                ]
    scaling = throughput[4] / throughput[1]
    record_metric(
        "service", "pool_queries_per_second_1worker",
        round(throughput[1], 1),
    )
    record_metric(
        "service", "pool_queries_per_second_4workers",
        round(throughput[4], 1),
    )
    record_metric("service", "worker_scaling_ratio", round(scaling, 3))
    record_metric(
        "service", "scaling_efficiency", round(scaling / 4, 3)
    )
    if rss_mb:
        record_metric("service", "worker_rss_mb", round(max(rss_mb), 1))
    skip_if_smoke("multi-process scaling timing")
    if len(os.sched_getaffinity(0)) < 4:
        pytest.skip(
            "scaling assertion needs >= 4 cores (this runner has %d)"
            % len(os.sched_getaffinity(0))
        )
    assert scaling >= 2.5, (
        "4 pool workers should lift throughput >= 2.5x over 1 "
        "(got %.2fx: %s)" % (scaling, throughput)
    )


def test_live_server_matches_direct_solver(workload):
    graph, queries = workload
    registry = GraphRegistry()
    registry.register("bench", graph)
    service = QueryService(
        registry, ServiceConfig(workers=4, max_inflight=256)
    )
    with ServiceThread(service) as running:
        client = ServiceClient(port=running.port)
        records = run_load(
            client, queries, graph="bench", batch_size=32, workers=4
        )
        stats = client.stats()
    assert len(records) == len(queries)
    mismatches = verify_against_direct(graph, queries, records)
    assert mismatches == [], mismatches[:5]
    (graph_stats,) = stats["graphs"]
    assert graph_stats["queries"] == len(queries)
    assert stats["service"]["rejected"] == 0


def test_snapshot_warm_started_server_matches_direct_solver(
    tmp_path, workload
):
    graph, queries = workload
    path = str(tmp_path / "serve.snap")
    save_snapshot(IndexedGraph(graph), path)
    registry = GraphRegistry()
    entry = registry.register_snapshot("warm", path)
    assert entry.stats.source == "snapshot"
    service = QueryService(
        registry, ServiceConfig(workers=2, max_inflight=256)
    )
    with ServiceThread(service) as running:
        client = ServiceClient(port=running.port)
        records = run_load(client, queries, graph="warm", batch_size=32)
    mismatches = verify_against_direct(graph, queries, records)
    assert mismatches == [], mismatches[:5]
