"""Service tier: snapshot warm-start + live-server differential load.

Two claims of the serving layer (the ISSUE-3 acceptance criteria):

* **Warm-start beats recompiling.**  Loading a persisted compiled
  graph (:func:`repro.service.load_snapshot`) must be measurably
  faster than compiling the same :class:`IndexedGraph` from its
  ``DbGraph`` — the snapshot stores the *result* of the per-vertex
  repr-sorts, so a thaw is pure array reads.  Asserted best-of-5 with
  a 1.2× gap.
* **The service changes no answers.**  A load-generator run against a
  live ``repro serve`` instance (real sockets, JSON codec, admission
  control, thread-pool dispatch) must return results **path-for-path
  identical** to direct :func:`solve_rspq` calls — for a compiled
  registration and for a snapshot warm-started one alike.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    measure_seconds,
    record_metric,
    scaled,
    skip_if_smoke,
)
from benchmarks.workloads import mixed_workload, random_regexes

from repro.core.solver import STRATEGY_EXACT, RspqSolver
from repro.engine import IndexedGraph
from repro.graphs.generators import random_labeled_graph
from repro.service import (
    GraphRegistry,
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    load_snapshot,
    run_load,
    save_snapshot,
    verify_against_direct,
)

#: Graph size for the warm-start measurement (big enough that the
#: compile pass's sorting dominates noise).
NUM_VERTICES = scaled(1500, 60)
NUM_EDGES = scaled(6000, 180)

#: Load-generator workload against the live server.
NUM_QUERIES = scaled(120, 24)


@pytest.fixture(scope="module")
def big_graph():
    return random_labeled_graph(NUM_VERTICES, NUM_EDGES, "abc", seed=7)


@pytest.fixture(scope="module")
def workload():
    graph, queries = mixed_workload(
        num_queries=NUM_QUERIES, seed=31, num_vertices=40, num_edges=130
    )
    # Widen beyond the curated rotation: seeded random regexes over the
    # same alphabet, endpoints reused from the seeded queries.  Only
    # polynomial strategies are admitted at this graph size — random
    # exact-strategy languages get their differential coverage on the
    # small graphs of tests/test_hypothesis_solvers.py, where the
    # exponential oracle is affordable (the curated HARD_LANGUAGES in
    # the mixed workload keep the exact path exercised here).
    wanted = scaled(16, 6)
    extras = []
    for regex in random_regexes(4 * wanted, seed=77, max_depth=2):
        if RspqSolver(regex).strategy == STRATEGY_EXACT:
            continue
        index = len(extras)
        extras.append((
            regex,
            queries[index % len(queries)][1],
            queries[index % len(queries)][2],
        ))
        if len(extras) == wanted:
            break
    assert len(extras) == wanted
    return graph, queries + extras


def test_snapshot_roundtrip_is_exact(tmp_path, big_graph):
    indexed = IndexedGraph(big_graph)
    path = str(tmp_path / "big.snap")
    save_snapshot(indexed, path)
    thawed = load_snapshot(path)
    assert list(thawed.vertices()) == list(indexed.vertices())
    assert list(thawed.edges()) == list(indexed.edges())
    assert thawed.num_edges == indexed.num_edges
    assert thawed.labels() == indexed.labels()


def test_snapshot_warm_start_faster_than_recompile(tmp_path, big_graph):
    indexed = IndexedGraph(big_graph)
    path = str(tmp_path / "big.snap")
    save_snapshot(indexed, path)
    compile_seconds = min(
        measure_seconds(IndexedGraph, big_graph)[0] for _ in range(5)
    )
    load_seconds = min(
        measure_seconds(load_snapshot, path)[0] for _ in range(5)
    )
    record_metric("service", "compile_seconds", round(compile_seconds, 6))
    record_metric("service", "thaw_seconds", round(load_seconds, 6))
    record_metric(
        "service", "thaw_speedup", round(compile_seconds / load_seconds, 3)
    )
    skip_if_smoke("warm-start timing comparison")
    assert load_seconds * 1.2 < compile_seconds, (
        "snapshot load (%.4fs) should beat recompilation (%.4fs) by "
        ">=1.2x" % (load_seconds, compile_seconds)
    )


def test_live_server_matches_direct_solver(workload):
    graph, queries = workload
    registry = GraphRegistry()
    registry.register("bench", graph)
    service = QueryService(
        registry, ServiceConfig(workers=4, max_inflight=256)
    )
    with ServiceThread(service) as running:
        client = ServiceClient(port=running.port)
        records = run_load(
            client, queries, graph="bench", batch_size=32, workers=4
        )
        stats = client.stats()
    assert len(records) == len(queries)
    mismatches = verify_against_direct(graph, queries, records)
    assert mismatches == [], mismatches[:5]
    (graph_stats,) = stats["graphs"]
    assert graph_stats["queries"] == len(queries)
    assert stats["service"]["rejected"] == 0


def test_snapshot_warm_started_server_matches_direct_solver(
    tmp_path, workload
):
    graph, queries = workload
    path = str(tmp_path / "serve.snap")
    save_snapshot(IndexedGraph(graph), path)
    registry = GraphRegistry()
    entry = registry.register_snapshot("warm", path)
    assert entry.stats.source == "snapshot"
    service = QueryService(
        registry, ServiceConfig(workers=2, max_inflight=256)
    )
    with ServiceThread(service) as running:
        client = ServiceClient(port=running.port)
        records = run_load(client, queries, graph="warm", batch_size=32)
    mismatches = verify_against_direct(graph, queries, records)
    assert mismatches == [], mismatches[:5]
