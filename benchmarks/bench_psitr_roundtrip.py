"""E8 — the Ψtr characterisation (Theorem 4).

Round trips: every tractable catalog language is decomposed into a Ψtr
expression that is *verified equivalent*; compiled Ψtr expressions are
in trC (the easy direction); hard languages never admit an equivalent
extraction.
"""

import pytest

from repro import catalog
from repro.core.psitr import decompose, equivalent_to, extract
from repro.core.trc import is_in_trc


@pytest.mark.parametrize(
    "entry", catalog.tractable_entries(), ids=lambda e: e.name
)
def test_decomposition_roundtrip(benchmark, entry):
    lang = entry.language()

    def roundtrip():
        expression = decompose(lang)
        return expression, equivalent_to(expression, lang.dfa)

    expression, equal = benchmark(roundtrip)
    assert equal
    benchmark.extra_info["psitr"] = str(expression)[:120]


def test_easy_direction_compiled_expressions_are_trc(benchmark):
    expressions = []
    for entry in catalog.tractable_entries():
        expression = extract(entry.language().ast)
        if expression is not None:
            expressions.append((entry, expression))

    def check_all():
        return [
            is_in_trc(
                expression.to_language(
                    alphabet=entry.language().alphabet
                ).dfa
            )
            for entry, expression in expressions
        ]

    results = benchmark(check_all)
    assert all(results)


def test_hard_languages_have_no_equivalent_extraction(benchmark):
    entries = catalog.hard_entries()

    def attempt_all():
        outcomes = []
        for entry in entries:
            lang = entry.language()
            expression = extract(lang.ast)
            outcomes.append(
                expression is None
                or not equivalent_to(expression, lang.dfa)
            )
        return outcomes

    results = benchmark(attempt_all)
    assert all(results)
