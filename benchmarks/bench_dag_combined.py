"""E11 — polynomial combined complexity on DAGs (Theorem 8 base case).

On DAGs every path is simple, so even NP-complete languages are
answered by one product BFS; cost grows with |G|·|A_L| — we scale both
factors and verify agreement with the exact solver.
"""

import pytest

from repro import language
from repro.algorithms.dag import DagRspqSolver
from repro.algorithms.exact import ExactSolver
from repro.graphs.generators import grid_graph, layered_dag

HARD_LANGUAGE = "((a+b)(a+b))*"  # even-length: NP-complete in general


@pytest.mark.parametrize("layers", [6, 12, 24])
def test_scaling_in_graph(benchmark, layers):
    graph = layered_dag(layers, 4, "ab", density=0.5, seed=layers)
    solver = DagRspqSolver(graph)
    lang = language(HARD_LANGUAGE)
    benchmark(
        solver.shortest_simple_path, lang, (0, 0), (layers - 1, 3)
    )


@pytest.mark.parametrize("size", [2, 4, 8])
def test_scaling_in_language(benchmark, size):
    # Combined complexity: the language is part of the input.
    graph = grid_graph(6, 6)
    solver = DagRspqSolver(graph)
    text = "(" + "(a+b)" * size + ")*"
    lang = language(text)
    benchmark(solver.shortest_simple_path, lang, (0, 0), (5, 5))


def test_agreement_with_exact_on_grids(benchmark):
    graph = grid_graph(4, 4)
    solver = DagRspqSolver(graph)
    lang = language(HARD_LANGUAGE)

    def run():
        return solver.shortest_simple_path(lang, (0, 0), (3, 3))

    mine = benchmark(run)
    truth = ExactSolver(lang).shortest_simple_path(graph, (0, 0), (3, 3))
    assert (mine is None) == (truth is None)
    if mine is not None:
        assert len(mine) == len(truth)


def test_hard_language_easy_on_dag_shape():
    # The headline: a language that is NP-complete on general graphs is
    # answered on a large DAG instantly by product BFS.
    graph = grid_graph(12, 12)
    solver = DagRspqSolver(graph)
    path = solver.shortest_simple_path(language(HARD_LANGUAGE), (0, 0),
                                       (11, 11))
    assert path is not None
    assert len(path) == 22
