"""E2 — the Figure-1 reduction (Lemma 5).

Vertex-Disjoint-Path reduces to RSPQ(a*b(cc)*d).  We measure the
construction cost (linear in the input) and assert instance
equivalence on a family of random digraphs.
"""

import random

import pytest

from repro import language
from repro.algorithms.disjoint_paths import vertex_disjoint_paths_exist
from repro.algorithms.exact import ExactSolver
from repro.algorithms.reductions import disjoint_paths_to_rspq
from repro.core.witness import find_hardness_witness

FIG1_LANGUAGE = "a*b(cc)*d"


def _instance(seed, n):
    rng = random.Random(seed)
    edges = set()
    for _ in range(2 * n):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    x1, y1, x2, y2 = rng.sample(range(n), 4)
    return edges, x1, y1, x2, y2


@pytest.fixture(scope="module")
def witness():
    return find_hardness_witness(language(FIG1_LANGUAGE).dfa)


def test_reduction_construction_cost(benchmark, witness):
    edges, x1, y1, x2, y2 = _instance(7, 40)

    def build():
        return disjoint_paths_to_rspq(edges, x1, y1, x2, y2, witness)

    graph, _x, _y = benchmark(build)
    # Linear size: each input edge contributes |w1| + |w2| edges.
    per_edge = len(witness.w1) + len(witness.w2)
    assert graph.num_edges <= len(edges) * per_edge + 20


def test_reduction_preserves_answers(benchmark, witness):
    lang = language(FIG1_LANGUAGE)
    solver = ExactSolver(lang)
    instances = [_instance(seed, 6) for seed in range(8)]

    def run_all():
        results = []
        for edges, x1, y1, x2, y2 in instances:
            graph, x, y = disjoint_paths_to_rspq(
                edges, x1, y1, x2, y2, witness
            )
            results.append(solver.exists(graph, x, y))
        return results

    answers = benchmark(run_all)
    truths = [
        vertex_disjoint_paths_exist(edges, x1, y1, x2, y2)
        for edges, x1, y1, x2, y2 in instances
    ]
    assert answers == truths
    benchmark.extra_info["yes_instances"] = sum(truths)


def test_witness_extraction_cost(benchmark):
    lang = language(FIG1_LANGUAGE)
    found = benchmark(find_hardness_witness, lang.dfa)
    # The paper's chosen witness words: wl=w1=a, wm=b, w2=cc, wr=d —
    # ours must satisfy the same conditions (possibly other words).
    assert found is not None
    assert found.w1 and found.w2 and found.wm
