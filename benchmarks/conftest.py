"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment row of EXPERIMENTS.md
(which maps to a figure, example or theorem-level claim of the paper).
Benchmarks both *measure* (via pytest-benchmark) and *assert the shape*
of the paper's claim (who wins, growth order), so a bench run doubles
as a reproduction check.

Smoke profile
-------------

``REPRO_BENCH_PROFILE=smoke`` switches every benchmark to a tiny
workload: :func:`scaled` picks the small size and
:func:`skip_if_smoke` drops wall-clock comparison assertions (which
shared CI runners make flaky by construction).  CI's ``bench-smoke``
job runs every ``bench_*.py`` under this profile on each push, so a
benchmark that stops importing or whose harness code rots fails CI
instead of rotting silently; the full-size profile remains the local
default.
"""

from __future__ import annotations

import os
import time

import pytest

#: True when benchmarks run under the tiny CI smoke profile.
SMOKE = os.environ.get("REPRO_BENCH_PROFILE", "").lower() == "smoke"


def scaled(full, smoke):
    """``full`` normally, ``smoke`` under ``REPRO_BENCH_PROFILE=smoke``."""
    return smoke if SMOKE else full


def skip_if_smoke(reason="wall-clock assertion is meaningless on shared CI runners"):
    """Skip the calling test under the smoke profile."""
    if SMOKE:
        pytest.skip("smoke profile: %s" % reason)


def measure_seconds(fn, *args, **kwargs):
    """Wall-clock one call (for shape assertions, not for reporting)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def growth_ratios(sizes, times):
    """Consecutive runtime ratios, paired with size ratios."""
    pairs = []
    for (size_a, time_a), (size_b, time_b) in zip(
        zip(sizes, times), zip(sizes[1:], times[1:])
    ):
        if time_a <= 0:
            continue
        pairs.append((size_b / size_a, time_b / time_a))
    return pairs
