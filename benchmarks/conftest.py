"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment row of EXPERIMENTS.md
(which maps to a figure, example or theorem-level claim of the paper).
Benchmarks both *measure* (via pytest-benchmark) and *assert the shape*
of the paper's claim (who wins, growth order), so a bench run doubles
as a reproduction check.

Smoke profile
-------------

``REPRO_BENCH_PROFILE=smoke`` switches every benchmark to a tiny
workload: :func:`scaled` picks the small size and
:func:`skip_if_smoke` drops wall-clock comparison assertions (which
shared CI runners make flaky by construction).  CI's ``bench-smoke``
job runs every ``bench_*.py`` under this profile on each push, so a
benchmark that stops importing or whose harness code rots fails CI
instead of rotting silently; the full-size profile remains the local
default.

Machine-readable artifacts
--------------------------

Every benchmark module that runs leaves a ``BENCH_<name>.json`` in the
artifact directory (``REPRO_BENCH_ARTIFACTS``, default
``bench-artifacts/``): the profile, per-test outcomes and wall-clock
durations, plus any named metrics a bench records via
:func:`record_metric` (speedup ratios, step counts, sizes).  CI
uploads the directory on every push, so the performance trajectory is
tracked across PRs instead of living only in commit messages.
"""

from __future__ import annotations

import json
import os
import sys
import time
import types

import pytest

#: True when benchmarks run under the tiny CI smoke profile.
SMOKE = os.environ.get("REPRO_BENCH_PROFILE", "").lower() == "smoke"

#: Environment variable naming the artifact output directory.
ARTIFACTS_ENV = "REPRO_BENCH_ARTIFACTS"

# pytest loads this file as the top-level module ``conftest`` while the
# bench modules import it as ``benchmarks.conftest`` — two module
# objects for one file.  The artifact state therefore lives in one
# process-global registry both instances resolve to, so metrics
# recorded by the benches land in the JSON the hooks write.
_state = sys.modules.setdefault(
    "_repro_bench_artifact_state",
    types.SimpleNamespace(metrics={}, test_rows={}),
)

#: Per-bench named metrics recorded by the modules themselves.
_metrics = _state.metrics

#: Per-bench test rows collected by the pytest hooks.
_test_rows = _state.test_rows


def artifact_dir():
    """Directory the ``BENCH_*.json`` artifacts are written to."""
    return os.environ.get(ARTIFACTS_ENV, "bench-artifacts")


def _bench_name(path):
    """``benchmarks/bench_engine_batch.py`` -> ``engine_batch``."""
    base = os.path.basename(str(path))
    if base.endswith(".py"):
        base = base[:-3]
    if base.startswith("bench_"):
        base = base[len("bench_"):]
    return base


def record_metric(bench, key, value):
    """Record a named metric for ``bench``'s JSON artifact.

    ``bench`` is the short module name (``"csr_solvers"`` for
    ``bench_csr_solvers.py``); ``value`` must be JSON-serialisable.
    Call it from the benchmark test bodies for the numbers worth
    tracking across PRs — speedup ratios, step counts, sizes.
    """
    _metrics.setdefault(bench, {})[key] = value


def pytest_runtest_logreport(report):
    """Collect per-test durations for every bench module that runs."""
    path = report.nodeid.split("::", 1)[0]
    base = os.path.basename(path)
    if not base.startswith("bench_"):
        return
    # One row per test: use the call phase, or the setup phase for
    # skips (skipped tests never reach call).
    if report.when != "call" and not (
        report.when == "setup" and report.skipped
    ):
        return
    _test_rows.setdefault(_bench_name(path), []).append({
        "test": report.nodeid.split("::", 1)[1],
        "outcome": report.outcome,
        "seconds": round(report.duration, 6),
    })


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per bench module that ran.

    The union of row and metric keys is written, so a metric recorded
    under a name with no collected test rows (a typo'd bench name, or
    a module whose tests all died before their call phase) still lands
    in an artifact instead of vanishing silently.
    """
    if not _test_rows and not _metrics:
        return
    out_dir = artifact_dir()
    os.makedirs(out_dir, exist_ok=True)
    for name in sorted(set(_test_rows) | set(_metrics)):
        rows = _test_rows.get(name, [])
        payload = {
            "bench": name,
            "profile": "smoke" if SMOKE else "full",
            "total_seconds": round(
                sum(row["seconds"] for row in rows), 6
            ),
            "tests": rows,
            "metrics": _metrics.get(name, {}),
        }
        out_path = os.path.join(out_dir, "BENCH_%s.json" % name)
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


def scaled(full, smoke):
    """``full`` normally, ``smoke`` under ``REPRO_BENCH_PROFILE=smoke``."""
    return smoke if SMOKE else full


def skip_if_smoke(reason="wall-clock assertion is meaningless on shared CI runners"):
    """Skip the calling test under the smoke profile."""
    if SMOKE:
        pytest.skip("smoke profile: %s" % reason)


def measure_seconds(fn, *args, **kwargs):
    """Wall-clock one call (for shape assertions, not for reporting)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def growth_ratios(sizes, times):
    """Consecutive runtime ratios, paired with size ratios."""
    pairs = []
    for (size_a, time_a), (size_b, time_b) in zip(
        zip(sizes, times), zip(sizes[1:], times[1:])
    ):
        if time_a <= 0:
            continue
        pairs.append((size_b / size_a, time_b / time_a))
    return pairs
