"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment row of EXPERIMENTS.md
(which maps to a figure, example or theorem-level claim of the paper).
Benchmarks both *measure* (via pytest-benchmark) and *assert the shape*
of the paper's claim (who wins, growth order), so a bench run doubles
as a reproduction check.
"""

from __future__ import annotations

import time


def measure_seconds(fn, *args, **kwargs):
    """Wall-clock one call (for shape assertions, not for reporting)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def growth_ratios(sizes, times):
    """Consecutive runtime ratios, paired with size ratios."""
    pairs = []
    for (size_a, time_a), (size_b, time_b) in zip(
        zip(sizes, times), zip(sizes[1:], times[1:])
    ):
        if time_a <= 0:
            continue
        pairs.append((size_b / size_a, time_b / time_a))
    return pairs
