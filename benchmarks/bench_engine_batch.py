"""Engine batch execution vs per-query ``solve_rspq`` — the plan cache.

A 100+-query mixed-regime workload (finite / trC / NP-complete
languages, all three trichotomy strategies exercised) against one graph.
Per-query ``solve_rspq`` re-parses the regex, re-minimises the DFA,
re-classifies and re-decomposes the language for every single query;
:class:`repro.engine.QueryEngine` compiles the graph to an indexed view
once and keeps one plan per distinct language in its LRU cache.

Asserted shape (the ISSUE-1 acceptance criteria):

* with a warm plan cache, ``run_batch`` is at least 3× faster than the
  per-query baseline on the same workload;
* the engine's answers match the baseline *path for path* — identical
  vertices and labels, not merely identical lengths.
"""

import pytest

from benchmarks.conftest import (
    measure_seconds,
    record_metric,
    scaled,
    skip_if_smoke,
)
from benchmarks.workloads import mixed_workload

from repro.core.solver import solve_rspq
from repro.engine import QueryEngine

NUM_QUERIES = scaled(104, 24)


@pytest.fixture(scope="module")
def workload():
    """One graph and the mixed-language query rotation."""
    return mixed_workload(
        num_queries=NUM_QUERIES,
        seed=17,
        num_vertices=scaled(40, 16),
        num_edges=scaled(120, 50),
    )


def _run_baseline(graph, queries):
    return [
        solve_rspq(regex, graph, source, target)
        for regex, source, target in queries
    ]


def test_engine_matches_baseline_path_for_path(workload):
    graph, queries = workload
    engine = QueryEngine(graph)
    batch = engine.run_batch(queries)
    baseline = _run_baseline(graph, queries)
    assert len(batch) == len(baseline)
    for query, engine_result, reference in zip(
        queries, batch.results, baseline
    ):
        assert engine_result.found == reference.found, query
        assert engine_result.path == reference.path, query
        assert engine_result.strategy == reference.strategy, query


def test_warm_engine_at_least_3x_faster(workload):
    skip_if_smoke("warm-cache speedup ratio")
    graph, queries = workload
    engine = QueryEngine(graph)
    engine.run_batch(queries)  # warm the plan cache
    engine_seconds, batch = measure_seconds(engine.run_batch, queries)
    baseline_seconds, _ = measure_seconds(_run_baseline, graph, queries)
    record_metric(
        "engine_batch", "warm_engine_seconds", round(engine_seconds, 6)
    )
    record_metric(
        "engine_batch", "baseline_seconds", round(baseline_seconds, 6)
    )
    record_metric(
        "engine_batch", "warm_speedup",
        round(baseline_seconds / engine_seconds, 3),
    )
    assert batch.plans_compiled == 0  # fully warm
    assert batch.plan_cache_hits == len(queries)
    assert baseline_seconds >= 3 * engine_seconds, (
        "expected >= 3x speedup, got %.1fx (engine %.4fs, baseline %.4fs)"
        % (baseline_seconds / engine_seconds, engine_seconds, baseline_seconds)
    )


def test_strategies_are_mixed(workload):
    graph, queries = workload
    engine = QueryEngine(graph)
    batch = engine.run_batch(queries)
    counts = batch.strategy_counts()
    assert len(counts) == 3, counts  # all three trichotomy regimes ran


def test_engine_batch(benchmark, workload):
    graph, queries = workload
    engine = QueryEngine(graph)
    engine.run_batch(queries)  # warm
    batch = benchmark(engine.run_batch, queries)
    assert batch.plans_compiled == 0


def test_per_query_baseline(benchmark, workload):
    graph, queries = workload
    results = benchmark(_run_baseline, graph, queries)
    assert len(results) == len(queries)
