"""Vectorized batch execution vs the per-query parallel path.

The workload is the shape the vectorized engine was built for — *few
plans, many endpoint pairs*: every query shares one ``a*ba*`` plan
over distinct endpoints of a random ``a``-expander whose only ``b``
edges dead-end in a sink (:func:`benchmarks.workloads.
sweep_skewed_workload`).  The reachability index cannot short-circuit
these queries (endpoints are label-closure reachable) and the result
cache never fires (pairs are distinct), so the PR-2 parallel path must
pay one full product search per query — while one shared CSR sweep
answers the whole group, proving almost every query NOT_FOUND in a
handful of synchronized BFS rounds.

Asserted shape (the ISSUE-7 acceptance criteria):

* vectorized answers are **identical** to the per-query path, query
  for query;
* nearly the whole batch is decided by sweeps (counters prove the
  fast path actually ran — a silent fallback cannot pass);
* on the full profile, one vectorized worker beats the PR-2 baseline
  (``vectorize=False, workers=4, mode="thread"``) by **≥ 5×**
  wall-clock; the ``vectorized_speedup`` ratio metric lands in the
  JSON artifact and is gated by ``check_perf_regression.py``.
"""

import pytest

from benchmarks.conftest import (
    measure_seconds,
    record_metric,
    scaled,
    skip_if_smoke,
)
from benchmarks.workloads import sweep_skewed_workload

from repro.engine import QueryEngine

#: The PR-2 baseline configuration: parallel, strictly per-query.
BASELINE_WORKERS = 4

NUM_PAIRS = scaled(400, 60)
NUM_VERTICES = scaled(400, 60)

#: The full-profile wall-clock bar (measured ~8× on one core).
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def workload():
    return sweep_skewed_workload(
        num_pairs=NUM_PAIRS, num_vertices=NUM_VERTICES, seed=29
    )


def _assert_identical(reference, batch):
    assert len(reference) == len(batch)
    for ref, res in zip(reference.results, batch.results):
        key = (str(ref.language), ref.source, ref.target)
        assert res.found == ref.found, key
        assert res.path == ref.path, key
        assert res.strategy == ref.strategy, key
        assert res.error == ref.error, key


def test_vectorized_matches_the_per_query_path(workload):
    graph, queries = workload
    per_query = QueryEngine(graph).run_batch(queries, vectorize=False)
    vectorized = QueryEngine(graph).run_batch(queries)
    _assert_identical(per_query, vectorized)


def test_sweeps_decide_the_workload(workload):
    """The counters prove the fast path ran — no silent fallback."""
    graph, queries = workload
    batch = QueryEngine(graph).run_batch(queries)
    stats = batch.stats
    assert stats.sweeps >= 1
    assert stats.grouped_queries == len(queries)
    # The workload is adversarial for the other shortcuts: the sweep,
    # not the index or the cache, must carry the batch.
    assert stats.peeled_cache_hits == 0
    assert stats.swept_negatives >= 0.8 * len(queries)


def test_vectorized_speedup_over_parallel_baseline(workload):
    """≥ 5× over ``vectorize=False, workers=4`` on the skewed batch."""
    graph, queries = workload
    # No result cache: the best-of-two reruns must re-solve, not
    # replay (pairs are already distinct within one run).
    baseline_engine = QueryEngine(graph, result_cache=False)
    vectorized_engine = QueryEngine(graph, result_cache=False)
    # Best of two runs each: one noisy scheduling hiccup must not
    # decide a wall-clock comparison.
    baseline_seconds, baseline_batch = min(
        (measure_seconds(
            baseline_engine.run_batch, queries,
            vectorize=False, workers=BASELINE_WORKERS, mode="thread",
        ) for _ in range(2)),
        key=lambda pair: pair[0],
    )
    vectorized_seconds, vectorized_batch = min(
        (measure_seconds(vectorized_engine.run_batch, queries)
         for _ in range(2)),
        key=lambda pair: pair[0],
    )
    _assert_identical(baseline_batch, vectorized_batch)
    speedup = baseline_seconds / vectorized_seconds
    record_metric(
        "vectorized_batch", "baseline_seconds",
        round(baseline_seconds, 6),
    )
    record_metric(
        "vectorized_batch", "vectorized_seconds",
        round(vectorized_seconds, 6),
    )
    record_metric(
        "vectorized_batch", "vectorized_speedup", round(speedup, 3)
    )
    record_metric("vectorized_batch", "num_pairs", len(queries))
    record_metric(
        "vectorized_batch", "swept_negatives",
        vectorized_batch.stats.swept_negatives,
    )
    # Metrics land in the artifact even under smoke — the perf gate
    # tracks the ratio trajectory; the hard bar only binds on full.
    skip_if_smoke("vectorized wall-clock speedup")
    assert speedup >= MIN_SPEEDUP, (
        "expected >=%.1fx over the per-query parallel path, got %.2fx "
        "(baseline %.3fs, vectorized %.3fs)"
        % (MIN_SPEEDUP, speedup, baseline_seconds, vectorized_seconds)
    )


def test_vectorized_batch(benchmark, workload):
    graph, queries = workload
    engine = QueryEngine(graph, result_cache=False)
    engine.run_batch(queries)  # warm the plan cache
    batch = benchmark(engine.run_batch, queries)
    assert batch.stats.sweeps >= 1


def test_per_query_parallel_baseline(benchmark, workload):
    graph, queries = workload
    engine = QueryEngine(graph, result_cache=False)
    engine.run_batch(queries, vectorize=False)  # warm the plan cache
    batch = benchmark(
        engine.run_batch, queries,
        vectorize=False, workers=BASELINE_WORKERS, mode="thread",
    )
    assert batch.stats is None
