"""Resilience under overload: shedding keeps goodput and p99 honest.

The load shedder's claim (ISSUE-10): when offered load far exceeds
capacity, admission control must *protect* throughput, not erode it —
refusing excess work immediately (429 + ``Retry-After``) so the
admitted requests still flow at the unloaded service rate, and served
latency stays bounded instead of queueing without limit.

Measured against a live server (real sockets, JSON codec, admission
control, executor dispatch):

* **baseline** — one closed-loop client, no overload: the service
  rate with an empty queue;
* **overload** — many closed-loop clients with zero think time
  against a small ``max_inflight``: most attempts must be shed, and
  every shed must carry a structured 429;
* **goodput** — successful answers per second under overload must be
  ≥80% of the no-overload rate (asserted on the full profile;
  recorded as ``resilience_goodput_ratio`` and gated by
  ``check_perf_regression.py`` on every profile);
* **bounded p99** — the 99th-percentile *served* latency under
  overload stays within a small multiple of the unloaded latency —
  shed-don't-queue means admitted work never waits behind the mob.
"""

from __future__ import annotations

import threading
import time

import pytest

from benchmarks.conftest import record_metric, scaled, skip_if_smoke

from repro.errors import ServiceError, ServiceOverloadedError
from repro.graphs.generators import random_labeled_graph
from repro.service import (
    GraphRegistry,
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
)

#: Admission cap under test (small so overload is cheap to reach).
MAX_INFLIGHT = 4

#: Closed-loop baseline queries (no overload).
BASELINE_QUERIES = scaled(100, 30)

#: Overload shape: THREADS clients each firing ATTEMPTS back-to-back.
THREADS = scaled(16, 8)
ATTEMPTS = scaled(50, 15)

#: Query rotation: cheap, mixed found/not-found, all polynomial.
ROTATION = [
    ("a*", 0, 1),
    ("ab*", 0, 5),
    ("(ab)*", 2, 11),
    ("a(b|c)*", 3, 19),
    ("c*", 7, 7),
]


@pytest.fixture(scope="module")
def live_service():
    registry = GraphRegistry()
    registry.register(
        "main", random_labeled_graph(20, 60, "abc", seed=9)
    )
    service = QueryService(
        registry,
        # The shed threshold is effectively disabled so the sustained,
        # deliberate overload below measures the *shedder* alone — the
        # degradation ladder reacting to the same sheds is covered by
        # tests/test_chaos.py and would turn refusals into 503s here.
        ServiceConfig(
            workers=2,
            max_inflight=MAX_INFLIGHT,
            degrade_shed_threshold=10**9,
        ),
    )
    with ServiceThread(service) as running:
        yield running


def _drive(port, attempts, latencies, outcomes):
    """One closed-loop client: fire ``attempts`` queries, no think time."""
    client = ServiceClient(port=port)
    for index in range(attempts):
        language, source, target = ROTATION[index % len(ROTATION)]
        start = time.perf_counter()
        try:
            client.query(language, source, target)
        except ServiceOverloadedError as err:
            assert err.retry_after is not None and err.retry_after > 0
            outcomes.append("shed")
        except ServiceError:
            outcomes.append("error")
        else:
            latencies.append(time.perf_counter() - start)
            outcomes.append("ok")


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(int(len(ordered) * fraction), len(ordered) - 1)
    return ordered[index]


def test_shedding_preserves_goodput_under_overload(live_service):
    port = live_service.port

    # Baseline: one closed-loop client, queue always near-empty.
    base_latencies, base_outcomes = [], []
    start = time.perf_counter()
    _drive(port, BASELINE_QUERIES, base_latencies, base_outcomes)
    base_seconds = time.perf_counter() - start
    assert base_outcomes.count("ok") == BASELINE_QUERIES
    baseline_qps = BASELINE_QUERIES / base_seconds

    # Overload: THREADS closed-loop clients, zero think time, against
    # max_inflight=4 — far more offered work than capacity.
    over_latencies, over_outcomes = [], []
    workers = [
        threading.Thread(
            target=_drive,
            args=(port, ATTEMPTS, over_latencies, over_outcomes),
        )
        for _ in range(THREADS)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    over_seconds = time.perf_counter() - start

    served = over_outcomes.count("ok")
    shed = over_outcomes.count("shed")
    assert over_outcomes.count("error") == 0
    # The overload must actually overload: real shedding happened.
    assert shed > 0
    assert served > 0
    goodput_qps = served / over_seconds
    goodput_ratio = goodput_qps / baseline_qps
    shed_fraction = shed / len(over_outcomes)

    p99_seconds = _percentile(over_latencies, 0.99)
    base_p50 = _percentile(base_latencies, 0.50)

    record_metric("resilience", "baseline_qps", round(baseline_qps, 1))
    record_metric("resilience", "overload_goodput_qps",
                  round(goodput_qps, 1))
    record_metric("resilience", "resilience_goodput_ratio",
                  round(goodput_ratio, 3))
    record_metric("resilience", "shed_fraction",
                  round(shed_fraction, 3))
    record_metric("resilience", "served_p99_ms",
                  round(p99_seconds * 1e3, 3))

    skip_if_smoke()
    # Shedding protects throughput: admitted work still flows at
    # (at least) 80% of the unloaded service rate.
    assert goodput_ratio >= 0.8, (
        "goodput collapsed under overload: %.1f qps vs %.1f baseline"
        % (goodput_qps, baseline_qps)
    )
    # Shed-don't-queue keeps served latency bounded: p99 under a
    # 16-client mob stays within a small multiple of the unloaded
    # median (plus a constant for scheduler noise), nowhere near the
    # unbounded-queue regime.
    assert p99_seconds <= 20 * base_p50 + 0.25, (
        "served p99 %.3fs blew past the bounded-queue envelope "
        "(unloaded median %.4fs)" % (p99_seconds, base_p50)
    )


def test_sheds_are_structured_and_countable(live_service):
    """After an overload run, /stats accounts for every shed."""
    port = live_service.port
    client = ServiceClient(port=port)
    stats = client.stats()
    shedder = stats["resilience"]["shedder"]
    assert shedder["policy"] == "deadline"
    assert shedder["max_inflight"] == MAX_INFLIGHT
    # The overload test ran first (same module, same service): its
    # sheds are visible in the service-wide counters.
    total_sheds = (
        shedder["shed_hard"] + shedder["shed_soft"] + shedder["shed_doomed"]
    )
    assert total_sheds > 0
    assert stats["service"]["rejected"] == total_sheds
