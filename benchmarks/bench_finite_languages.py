"""E12 — finite languages and the AC0 / NL-hard split (Lemma 17).

* Finite L: query cost is dominated by |L| and word length, with a
  mild dependence on graph size — the constant-depth flavour of AC0.
* Infinite L: the Lemma-17 embedding turns plain Reachability into
  RSPQ(L) instances, pinning NL-hardness.
"""

import pytest

from repro import language
from repro.algorithms.bounded import FiniteLanguageSolver
from repro.algorithms.exact import ExactSolver
from repro.algorithms.reductions import reachability_to_rspq
from repro.graphs.generators import random_labeled_graph

FINITE = "abc + ab + ba"


@pytest.mark.parametrize("n", [20, 80, 320])
def test_finite_language_scaling(benchmark, n):
    lang = language(FINITE)
    solver = FiniteLanguageSolver(lang)
    graph = random_labeled_graph(n, 3 * n, "abc", seed=n)
    benchmark(solver.shortest_simple_path, graph, 0, n - 1)


def test_finite_matches_exact(benchmark):
    lang = language(FINITE)
    solver = FiniteLanguageSolver(lang)
    exact = ExactSolver(lang)
    instances = [
        (random_labeled_graph(12, 30, "abc", seed=s), s % 12, (s + 5) % 12)
        for s in range(8)
    ]

    def run():
        return [
            solver.shortest_simple_path(g, x, y) for g, x, y in instances
        ]

    mine = benchmark(run)
    for (graph, x, y), path in zip(instances, mine):
        truth = exact.shortest_simple_path(graph, x, y)
        assert (path is None) == (truth is None)
        if path is not None:
            assert len(path) == len(truth)


@pytest.mark.parametrize("n", [20, 40])
def test_reachability_embedding(benchmark, n):
    # Lemma 17: solving RSPQ(L) on the embedded instance answers
    # Reachability — infinite languages are at least NL-hard.
    lang = language("ab^+")
    edges = {(i, i + 1) for i in range(n - 1)} | {(n - 1, 0)}
    solver = ExactSolver(lang)

    def run():
        graph, x, y = reachability_to_rspq(edges, 0, n - 1, lang.dfa)
        return solver.exists(graph, x, y)

    assert benchmark(run)
