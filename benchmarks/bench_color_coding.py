"""E9 — k-RSPQ via color coding (Theorem 7).

Measured claims:

* runtime is FPT: it scales exponentially in k but near-linearly in
  |G| for fixed k (the O(2^O(k)·|G|·log|G|) bound);
* answers agree with exhaustive search on small instances.
"""

import pytest

from benchmarks.conftest import measure_seconds, skip_if_smoke

from repro import language
from repro.algorithms.color_coding import ColorCodingSolver
from repro.algorithms.exact import ExactSolver
from repro.graphs.generators import random_labeled_graph

LANGUAGE = "a*ba*"


@pytest.mark.parametrize("k", [2, 3, 4])
def test_scaling_in_k(benchmark, k):
    lang = language(LANGUAGE)
    solver = ColorCodingSolver(lang, seed=1, failure_probability=0.05)
    graph = random_labeled_graph(30, 70, "ab", seed=9)
    benchmark(solver.exists, graph, 0, 29, k)


@pytest.mark.parametrize("n", [20, 40, 80])
def test_scaling_in_graph_size(benchmark, n):
    lang = language(LANGUAGE)
    solver = ColorCodingSolver(lang, seed=1, failure_probability=0.05)
    graph = random_labeled_graph(n, 2 * n, "ab", seed=n)
    benchmark(solver.exists, graph, 0, n - 1, 3)


def test_graph_scaling_is_polynomial():
    skip_if_smoke("growth-ratio wall-clock comparison")
    lang = language(LANGUAGE)
    solver = ColorCodingSolver(lang, seed=1, failure_probability=0.1)
    sizes = [25, 50, 100]
    times = []
    for n in sizes:
        graph = random_labeled_graph(n, 2 * n, "ab", seed=n)
        seconds, _ = measure_seconds(solver.exists, graph, 0, n - 1, 3)
        times.append(max(seconds, 1e-6))
    # For fixed k the growth must stay near-linear (allow quadratic+noise).
    assert times[-1] <= times[0] * (sizes[-1] / sizes[0]) ** 2 * 20


def test_agreement_with_exact(benchmark):
    lang = language(LANGUAGE)
    cc = ColorCodingSolver(lang, seed=7)
    exact = ExactSolver(lang)
    instances = [
        (random_labeled_graph(10, 25, "ab", seed=s), s % 10, (s + 3) % 10)
        for s in range(6)
    ]

    def run():
        return [cc.exists(g, x, y, 4) for g, x, y in instances]

    answers = benchmark(run)
    for (graph, x, y), got in zip(instances, answers):
        path = exact.shortest_simple_path(graph, x, y)
        truth = path is not None and len(path) <= 4
        if got:
            assert truth
