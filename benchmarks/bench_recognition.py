"""E7 — recognizing tractable languages (Theorem 3).

* DFA representation: recognition cost scales polynomially with the
  (minimal) automaton size.
* NFA/regex representation: the determinization step blows up
  exponentially on the k-th-letter-from-the-end family — the
  algorithmic content of the PSPACE lower bound.
* Both Theorem-3 hardness constructions are exercised end to end.
"""

import pytest

from repro import catalog, language
from repro.algorithms.reductions import (
    emptiness_to_trc_instance,
    universality_to_trc_instance,
)
from repro.languages.nfa import nfa_from_ast
from repro.languages.regex.parser import parse
from repro.recognition import (
    recognize_tractable_dfa,
    recognize_tractable_nfa,
    recognize_tractable_regex,
)


def _chain_language(length):
    """a*(bb⁺+ε)c* padded with a word prefix to grow the DFA."""
    return language("x" * length + "a*(bb^+ + eps)c*")


@pytest.mark.parametrize("size", [4, 8, 16])
def test_dfa_recognition_scaling(benchmark, size):
    lang = _chain_language(size)
    report = benchmark(recognize_tractable_dfa, lang.dfa)
    assert report.tractable


def test_dfa_recognition_whole_catalog(benchmark):
    dfas = [(e, e.language().dfa) for e in catalog.entries()]

    def run():
        return [
            (entry, recognize_tractable_dfa(dfa).tractable)
            for entry, dfa in dfas
        ]

    results = benchmark(run)
    for entry, tractable in results:
        assert tractable is (entry.complexity != "NP-complete"), entry.name


@pytest.mark.parametrize("k", [4, 7, 10])
def test_nfa_determinization_blowup(benchmark, k):
    # L_k = (0+1)* 1 (0+1)^{k-1}: NFA has O(k) states, the minimal DFA
    # needs 2^k — recognition from the NFA must pay that price.  This
    # bench isolates the determinization step (the exponential part).
    from repro.languages.dfa import from_nfa

    text = "(0+1)*1" + "(0+1)" * (k - 1)
    nfa = nfa_from_ast(parse(text))
    dfa = benchmark(from_nfa, nfa)
    assert dfa.num_states >= 2 ** k
    assert nfa.num_states() <= 12 * k + 12


@pytest.mark.parametrize("k", [3, 4, 5])
def test_nfa_recognition_end_to_end(benchmark, k):
    # Full pipeline (determinize + minimise + trC pair sweep); the pair
    # sweep is Θ(M⁴) on the 2^k-state minimal DFA, so k stays small.
    text = "(0+1)*1" + "(0+1)" * (k - 1)
    nfa = nfa_from_ast(parse(text))
    report = benchmark(recognize_tractable_nfa, nfa)
    assert report.determinized_states >= 2 ** k
    assert report.minimal_states == 2 ** k


def test_emptiness_hardness_family(benchmark):
    cases = [
        (language("∅", alphabet={"a"}), True),
        (language("ab"), False),
        (language("a*b"), False),
    ]

    def run():
        return [
            recognize_tractable_dfa(
                emptiness_to_trc_instance(lang.dfa)
            ).tractable
            for lang, _expected in cases
        ]

    results = benchmark(run)
    assert results == [expected for _lang, expected in cases]


def test_universality_hardness_family(benchmark):
    cases = [("(0+1)*", True), ("(00+1)*", False), ("0*", False)]

    def run():
        return [
            recognize_tractable_nfa(
                universality_to_trc_instance(nfa_from_ast(parse(text)))
            ).tractable
            for text, _expected in cases
        ]

    results = benchmark(run)
    assert results == [expected for _text, expected in cases]


def test_regex_entry_point(benchmark):
    report = benchmark(recognize_tractable_regex, "a*(bb+ + eps)c*")
    assert report.tractable
