"""E6 — the tractability frontier (Theorem 1).

Same instance family, one language on each side of the frontier, over
the single-letter alphabet {a}:

* ``a*`` ∈ trC — answered by the polynomial nice-path solver;
* ``(aa)*`` ∉ trC — only exponential backtracking is available.

The *parity gadget* makes the separation measurable: a chain of
diamonds whose two arms have lengths 1 and 3 (both odd), so every
simple route has the same parity — odd, for an odd number of diamonds —
and ``(aa)*`` has **no** simple path.  A self-loop at the source lets
*walks* flip parity, which defeats product-graph liveness pruning: the
backtracking solver must enumerate all 2^w arm combinations.  The trC
solver answers ``a*`` on the same graphs in polynomial time.

Reproduced shape: who wins (the trC side), and the exponential-vs-
polynomial growth on either side of the frontier.
"""

import pytest

from benchmarks.conftest import SMOKE, measure_seconds

from repro import language
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import random_labeled_graph

TRACTABLE = "a*"
HARD = "(aa)*"


def parity_gadget(width):
    """A diamond chain with odd arms and a parity-flipping self-loop.

    ``width`` should be odd so that every simple source→target route
    has odd length, making the (aa)* instance a hard "no".  Self-loops
    at every diamond base let *walks* flip parity from anywhere, which
    keeps every search node alive for product-graph liveness pruning —
    the backtracking solver has to enumerate the 2^width arm choices.
    Returns ``(graph, source, target)``.
    """
    graph = DbGraph()
    for i in range(width):
        base, nxt = ("d", i), ("d", i + 1)
        # Short arm: one edge.
        graph.add_edge(base, "a", nxt)
        # Long arm: three edges.
        u, v = ("u", i), ("v", i)
        graph.add_edge(base, "a", u)
        graph.add_edge(u, "a", v)
        graph.add_edge(v, "a", nxt)
        # Walk-level parity flip (unusable by any simple path).
        graph.add_edge(base, "a", base)
    source, target = ("d", 0), ("d", width)
    return graph, source, target


@pytest.mark.parametrize("n", [40, 80, 160])
def test_tractable_side_scaling(benchmark, n):
    lang = language("a*(bb^+ + eps)c*")
    solver = TractableSolver(lang)
    graph = random_labeled_graph(n, 2 * n, "abc", seed=3 * n)
    benchmark(solver.shortest_simple_path, graph, 0, n - 1)


@pytest.mark.parametrize("width", [5, 7, 9, 11])
def test_hard_side_work_explodes(benchmark, width):
    lang = language(HARD)
    graph, x, y = parity_gadget(width)
    solver = ExactSolver(lang)

    def run():
        solver.steps = 0
        path = solver.shortest_simple_path(graph, x, y)
        return solver.steps, path

    steps, path = benchmark(run)
    assert path is None  # parity proves it: no simple (aa)* path
    benchmark.extra_info["search_steps"] = steps


@pytest.mark.parametrize("width", [5, 7, 9, 11])
def test_tractable_side_on_gadget(benchmark, width):
    lang = language(TRACTABLE)
    graph, x, y = parity_gadget(width)
    solver = TractableSolver(lang)

    path = benchmark(solver.shortest_simple_path, graph, x, y)
    assert path is not None
    assert len(path) == width  # the short arms all the way


def test_who_wins_shape():
    """Exponential growth on the hard side, polynomial on the trC side.

    Steps of the exact solver for (aa)* roughly double per extra
    diamond; the a* solver's wall-clock stays within polynomial range.
    """
    widths = [5, 7, 9, 11]
    hard_steps = []
    for width in widths:
        graph, x, y = parity_gadget(width)
        solver = ExactSolver(language(HARD))
        assert solver.shortest_simple_path(graph, x, y) is None
        hard_steps.append(solver.steps)
    # Adding two diamonds multiplies the work by ~4 (2 per diamond):
    # demand at least 2x to be robust against pruning noise.
    for before, after in zip(hard_steps, hard_steps[1:]):
        assert after >= 2 * before, hard_steps

    easy_times = []
    for width in widths:
        graph, x, y = parity_gadget(width)
        solver = TractableSolver(language(TRACTABLE))
        seconds, path = measure_seconds(
            solver.shortest_simple_path, graph, x, y
        )
        assert path is not None
        easy_times.append(seconds)
    # Polynomial: the largest instance costs at most ~50x the smallest
    # (sizes grew ~2x; generous noise allowance).  Not checked under
    # the smoke profile: wall-clock ratios are meaningless on shared
    # CI runners (the step-count growth assertions above still run).
    if not SMOKE:
        assert easy_times[-1] <= max(easy_times[0], 1e-4) * 50
