"""Reachability index + result cache (ISSUE-5 tentpole).

Two serving-shaped workloads against one engine stack, answers asserted
identical (including the short-circuit flags) before any clock starts:

* **negative-heavy** — two regions with only back-edges between them:
  most queries ask for a path the graph cannot have.  Without the
  index every such query pays a full product-graph search (goal BFS /
  live-table build over thousands of vertices) just to say "no"; with
  it, the engine short-circuits in O(1) after the one-off SCC
  condensation.  The acceptance bar is ≥5×.

* **repeated-query** — a small distinct query set replayed many times,
  the signature of a hot serving workload.  With the result cache the
  replay is a dict hit; without it every repeat re-runs its solver.
  The acceptance bar is ≥2× end-to-end.

Wall-clock assertions skip under ``REPRO_BENCH_PROFILE=smoke``; the
correctness assertions (identical answers, the short-circuit and
cache-hit flags actually firing) always run.  Ratios land in
``BENCH_reachability_index.json`` and are guarded against regression
by ``benchmarks/check_perf_regression.py`` in CI.
"""

import random
import time

from benchmarks.conftest import record_metric, scaled, skip_if_smoke

import pytest

from repro.engine import QueryEngine
from repro.graphs.dbgraph import DbGraph

#: Vertices per region; the negative-query cost without the index
#: scales with this while the short-circuit stays O(1).
REGION_SIZE = scaled(1500, 40)
#: Extra random intra-region edges per region.
REGION_EXTRA = scaled(3000, 80)
#: Distinct negative source/target pairs.
NEGATIVE_PAIRS = scaled(30, 6)
#: Distinct queries and replay count of the repeated-query workload.
DISTINCT_QUERIES = scaled(12, 4)
REPLAYS = scaled(25, 4)
#: Timed repetitions per side (min is reported).
REPS = scaled(3, 1)

#: Languages spanning all three trichotomy regimes (negative side —
#: the exact solver never searches there, its goal BFS proves "no").
LANGUAGES = ["ab + ba", "a*", "a*ba*", "(aa)*"]

#: Positive-workload languages: polynomial strategies only (a positive
#: exact-strategy search over a large SCC is exponential by design and
#: would measure the solver, not the cache).
POSITIVE_LANGUAGES = ["ab + ba", "a*", "a*b*", "a*(b + eps)a*b*"]


def _region(graph, offset, size, rng):
    """A strongly-connected-ish region: a cycle plus random chords."""
    vertices = list(range(offset, offset + size))
    for index, vertex in enumerate(vertices):
        graph.add_edge(
            vertex, "a", vertices[(index + 1) % size]
        )
    for _ in range(REGION_EXTRA):
        source = rng.choice(vertices)
        target = rng.choice(vertices)
        graph.add_edge(source, rng.choice("ab"), target)
    return vertices


@pytest.fixture(scope="module")
def two_region_graph():
    """Region B reaches region A, never the other way around."""
    rng = random.Random(91)
    graph = DbGraph()
    region_a = _region(graph, 0, REGION_SIZE, rng)
    region_b = _region(graph, REGION_SIZE, REGION_SIZE, rng)
    for _ in range(8):
        graph.add_edge(rng.choice(region_b), "b", rng.choice(region_a))
    return graph, region_a, region_b


def _measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _assert_identical(reference, candidate):
    for expected, got in zip(reference, candidate):
        assert got.found == expected.found
        if expected.path is None:
            assert got.path is None
        else:
            assert got.path.vertices == expected.path.vertices
            assert got.path.word == expected.path.word


def test_negative_heavy_workload_short_circuits_at_least_5x(
    two_region_graph,
):
    graph, region_a, region_b = two_region_graph
    rng = random.Random(23)
    queries = [
        (rng.choice(LANGUAGES), rng.choice(region_a), rng.choice(region_b))
        for _ in range(NEGATIVE_PAIRS)
    ]

    # Result caches off on both sides: this isolates the index effect
    # (otherwise the cache would also absorb the baseline's repeats).
    indexed = QueryEngine(graph, result_cache=False)
    baseline = QueryEngine(
        graph, result_cache=False, use_reach_index=False
    )

    def run(engine):
        return [
            engine.query(language, source, target)
            for language, source, target in queries
        ]

    indexed_results = run(indexed)    # warm plans + index closures
    baseline_results = run(baseline)  # warm plans
    _assert_identical(baseline_results, indexed_results)
    # The workload is genuinely negative-heavy and the index proves it.
    assert all(not result.found for result in baseline_results)
    assert all(
        result.stats.short_circuit for result in indexed_results
    )

    indexed_seconds = min(
        _measure(lambda: run(indexed)) for _ in range(REPS)
    )
    baseline_seconds = min(
        _measure(lambda: run(baseline)) for _ in range(REPS)
    )
    speedup = (
        baseline_seconds / indexed_seconds
        if indexed_seconds
        else float("inf")
    )
    record_metric(
        "reachability_index", "negative_baseline_seconds",
        round(baseline_seconds, 6),
    )
    record_metric(
        "reachability_index", "negative_indexed_seconds",
        round(indexed_seconds, 6),
    )
    record_metric(
        "reachability_index", "negative_speedup", round(speedup, 3)
    )
    skip_if_smoke()
    # The acceptance bar: provably-negative queries at least 5x faster
    # through the short-circuit (measured far higher on full profile).
    assert speedup >= 5.0, (baseline_seconds, indexed_seconds)


def test_repeated_query_workload_result_cache_at_least_2x():
    from repro.graphs.generators import random_labeled_graph

    # A serving-sized sparse graph: each distinct query costs real
    # solver work (≈ms), each replay should cost a dict hit.
    graph = random_labeled_graph(
        scaled(400, 40), scaled(900, 90), "ab", seed=7
    )
    vertices = list(graph.vertices())
    rng = random.Random(47)
    distinct = [
        (
            rng.choice(POSITIVE_LANGUAGES),
            rng.choice(vertices),
            rng.choice(vertices),
        )
        for _ in range(DISTINCT_QUERIES)
    ]
    workload = [
        distinct[index % len(distinct)]
        for index in range(DISTINCT_QUERIES * REPLAYS)
    ]

    cached = QueryEngine(graph)
    uncached = QueryEngine(graph, result_cache=False)

    def run(engine):
        return [
            engine.query(language, source, target)
            for language, source, target in workload
        ]

    cached_results = run(cached)      # warm plans + populate the cache
    uncached_results = run(uncached)  # warm plans
    _assert_identical(uncached_results, cached_results)
    # Every replay after the first pass over the distinct set hits.
    hits = sum(
        1 for result in cached_results if result.stats.result_cache_hit
    )
    assert hits >= len(workload) - len(distinct)
    assert cached.result_cache_stats().hits == hits

    cached_seconds = min(
        _measure(lambda: run(cached)) for _ in range(REPS)
    )
    uncached_seconds = min(
        _measure(lambda: run(uncached)) for _ in range(REPS)
    )
    speedup = (
        uncached_seconds / cached_seconds
        if cached_seconds
        else float("inf")
    )
    record_metric(
        "reachability_index", "cache_uncached_seconds",
        round(uncached_seconds, 6),
    )
    record_metric(
        "reachability_index", "cache_cached_seconds",
        round(cached_seconds, 6),
    )
    record_metric(
        "reachability_index", "result_cache_speedup", round(speedup, 3)
    )
    skip_if_smoke()
    # The acceptance bar: a repeated-query serving workload at least
    # 2x faster end-to-end through the result cache.
    assert speedup >= 2.0, (uncached_seconds, cached_seconds)
