"""Deterministic mixed-regime RSPQ workloads for benches and stress tests.

Every benchmark and concurrency test used to hand-roll its own query
list; this module is the single source of seeded, reproducible
workloads that exercise all three regimes of the trichotomy:

* **finite** languages — the AC0 case, dispatched to
  :class:`~repro.algorithms.bounded.FiniteLanguageSolver`;
* **infinite trC** languages — the NL case, dispatched to
  :class:`~repro.core.nice_paths.TractableSolver`;
* **NP-hard** languages (∉ trC) — dispatched to
  :class:`~repro.algorithms.exact.ExactSolver`.

All randomness flows through ``random.Random(seed)``, so the same
arguments always produce the same graph and the same query list —
which is what lets the parallel-execution tests assert bit-identical
results against a serial rerun.
"""

from __future__ import annotations

import random

from repro.graphs.dbgraph import DbGraph
from repro.graphs.generators import random_labeled_graph

#: Finite languages (AC0 regime) over the default ``abc`` alphabet.
FINITE_LANGUAGES = ("ab + ba", "abc")

#: Infinite trC languages (NL regime), including the paper's Example 1.
TRACTABLE_LANGUAGES = ("a*", "c*", "a*(bb^+ + eps)c*", "b*c*")

#: Languages outside trC (NP-complete regime).
HARD_LANGUAGES = ("a*ba*", "(aa)*")

#: The default mixed-regime rotation, in dispatch-diverse order.
MIXED_LANGUAGES = FINITE_LANGUAGES + TRACTABLE_LANGUAGES + HARD_LANGUAGES


def mixed_queries(graph, num_queries, seed=0, languages=MIXED_LANGUAGES,
                  hot_language=None, hot_every=None):
    """``num_queries`` seeded ``(language, source, target)`` triples.

    Languages rotate through ``languages``; endpoints are drawn
    uniformly (source ≠ target whenever the graph allows it) from the
    graph's own deterministic vertex order, so the same seed always
    yields the same workload.

    ``hot_language`` + ``hot_every`` plant a skew: every
    ``hot_every``-th query uses ``hot_language``, concentrating load on
    one plan — the shape that stresses shared-plan re-entrancy and
    single-flight compilation in the parallel engine.
    """
    if num_queries < 0:
        raise ValueError("num_queries must be >= 0")
    if (hot_language is None) != (hot_every is None):
        raise ValueError(
            "hot_language and hot_every must be given together"
        )
    if hot_every is not None and hot_every < 1:
        raise ValueError("hot_every must be >= 1")
    rng = random.Random(seed)
    vertices = list(graph.vertices())
    if not vertices:
        raise ValueError("graph has no vertices")
    queries = []
    for index in range(num_queries):
        if hot_every is not None and index % hot_every == 0:
            regex = hot_language
        else:
            regex = languages[index % len(languages)]
        source = rng.choice(vertices)
        target = rng.choice(vertices)
        if target == source and len(vertices) > 1:
            target = vertices[
                (vertices.index(source) + 1) % len(vertices)
            ]
        queries.append((regex, source, target))
    return queries


def mixed_workload(num_queries=104, seed=17, num_vertices=40, num_edges=120,
                   alphabet="abc", **query_kwargs):
    """A seeded random graph plus a mixed-regime query list.

    Returns ``(graph, queries)``.  Keyword arguments beyond the graph
    shape are forwarded to :func:`mixed_queries` (``languages``,
    ``hot_language``, ``hot_every``).
    """
    graph = random_labeled_graph(
        num_vertices, num_edges, alphabet, seed=seed
    )
    queries = mixed_queries(
        graph, num_queries, seed=seed + 1, **query_kwargs
    )
    return graph, queries


def distinct_languages(queries):
    """The set of distinct language specs appearing in ``queries``."""
    return {language for language, _source, _target in queries}


def sweep_skewed_workload(num_pairs, num_vertices, seed=0, out_degree=3,
                          language="a*ba*", sink_every=10):
    """Few plans, many endpoint pairs: the vectorized sweep's home turf.

    Returns ``(graph, queries)`` where every query asks ``language``
    (one shared plan) over distinct endpoint pairs drawn from a random
    ``a``-labeled multigraph of ``num_vertices`` vertices with
    ``out_degree`` edges each.  Every ``sink_every``-th vertex also
    carries a ``b`` edge into a dedicated out-degree-0 ``"sink"``
    vertex, so the workload is adversarial by construction for the
    engine's *other* batch shortcuts:

    * endpoints are reachable under the label closure ``{a, b}``, so
      the reachability index cannot short-circuit the answers;
    * yet (with the default ``a*ba*``) almost no pair admits a
      language-ordered walk — the only ``b`` edges dead-end in the
      sink — so nearly every query is a sweep-provable negative that
      per-query solving must discover the slow way, once per query.

    Pairs are distinct, so the result cache never fires inside the
    batch either.  Deterministic in ``seed``.
    """
    if num_pairs > num_vertices * (num_vertices - 1):
        raise ValueError(
            "cannot draw %d distinct pairs from %d vertices"
            % (num_pairs, num_vertices)
        )
    rng = random.Random(seed)
    edges = []
    for vertex in range(num_vertices):
        for _ in range(out_degree):
            edges.append((vertex, "a", rng.randrange(num_vertices)))
    for vertex in range(0, num_vertices, sink_every):
        edges.append((vertex, "b", "sink"))
    graph = DbGraph.from_edges(edges)
    seen = set()
    queries = []
    while len(queries) < num_pairs:
        pair = (rng.randrange(num_vertices), rng.randrange(num_vertices))
        if pair[0] != pair[1] and pair not in seen:
            seen.add(pair)
            queries.append((language, pair[0], pair[1]))
    return graph, queries


# -- random regular expressions (differential-testing strategies) ---------------
#
# The differential suites (tests/test_hypothesis_solvers.py, the
# service load generator) want languages nobody hand-picked: random
# expressions over the parser's own grammar, spanning all three
# regimes of the trichotomy by construction.  Everything is seeded so
# a failing example reproduces from its seed alone.

def random_regex(rng, alphabet="abc", max_depth=3):
    """A random regex string over ``alphabet`` (always parseable).

    Draws from the repository's regex grammar — union ``+``, (implicit)
    concatenation, star ``*``, plus ``^+``, ``eps`` — with sizes small
    enough that the exponential exact solver stays usable as the
    ground-truth oracle on the small graphs the differential tests use.
    """
    letters = sorted(alphabet)

    def atom(depth):
        roll = rng.random()
        if depth <= 0 or roll < 0.55:
            return rng.choice(letters)
        if roll < 0.65:
            return "eps"
        return "(%s)" % expression(depth - 1)

    def factor(depth):
        base = atom(depth)
        roll = rng.random()
        if roll < 0.30:
            # eps* / eps^+ are legal but degenerate; keep them rare by
            # starring letters and groups only.
            if base != "eps":
                return base + ("*" if roll < 0.20 else "^+")
        return base

    def term(depth):
        return "".join(
            factor(depth) for _ in range(rng.randint(1, 3))
        )

    def expression(depth):
        terms = [term(depth) for _ in range(rng.randint(1, 2))]
        return " + ".join(terms)

    return expression(max_depth)


def random_regexes(count, seed=0, alphabet="abc", max_depth=3):
    """``count`` seeded random regexes (deterministic in ``seed``)."""
    rng = random.Random(seed)
    return [
        random_regex(rng, alphabet=alphabet, max_depth=max_depth)
        for _ in range(count)
    ]
