"""E1 — the trichotomy table (Theorem 2).

Regenerates the paper's headline classification for every catalog
language and benchmarks the classifier itself.  The "table" the paper
reports is the complexity class per language; we assert it exactly.
"""

import pytest

from repro import catalog, classify


def _classification_table():
    rows = []
    for entry in catalog.entries():
        lang = entry.language()
        result = classify(lang.dfa, with_witness=False)
        rows.append(
            (entry.name, entry.regex, result.complexity_class.value,
             lang.num_states)
        )
    return rows


def test_trichotomy_table_matches_paper(benchmark):
    rows = benchmark(_classification_table)
    expected = {entry.name: entry.complexity for entry in catalog.entries()}
    for name, _regex, complexity, _m in rows:
        assert complexity == expected[name], name
    benchmark.extra_info["table"] = [
        "%s | %s | %s | M=%d" % row for row in rows
    ]


@pytest.mark.parametrize(
    "entry",
    catalog.entries(),
    ids=lambda e: e.name,
)
def test_classify_single_language(benchmark, entry):
    lang = entry.language()
    result = benchmark(classify, lang.dfa, with_witness=False)
    assert result.complexity_class.value == entry.complexity


def test_classification_with_witness_extraction(benchmark):
    entry = catalog.by_name("fig1-language")
    lang = entry.language()

    def classify_with_witness():
        return classify(lang.dfa, with_witness=True)

    result = benchmark(classify_with_witness)
    assert result.witness is not None
