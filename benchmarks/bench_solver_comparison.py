"""Ablation — three renditions of the same query, one language.

Compares, on identical instances for the Example-1 language:

* the **literal** summary-enumeration algorithm (Lemmas 15-16; the
  paper's own procedure, exponential constants),
* the **anchored** Ψtr-driven production solver (this repo's practical
  rendition),
* the **exact** backtracking baseline.

All three must agree (asserted); the interesting measurement is the
cost spread — the reason the anchored rendition exists.
"""

import pytest

from repro import language
from repro.algorithms.exact import ExactSolver
from repro.core.nice_paths import TractableSolver
from repro.core.summary_solver import SummarySolver
from repro.graphs.generators import random_labeled_graph

LANGUAGE = "a*(bb^+ + eps)c*"


def _instance(n, seed):
    return random_labeled_graph(n, 2 * n, "abc", seed=seed), 0, n - 1


@pytest.fixture(scope="module")
def solvers():
    lang = language(LANGUAGE)
    return {
        "summary": SummarySolver(lang, bound=3),
        "anchored": TractableSolver(lang),
        "exact": ExactSolver(lang),
    }


@pytest.mark.parametrize("variant", ["summary", "anchored", "exact"])
def test_small_instance(benchmark, solvers, variant):
    graph, x, y = _instance(12, seed=5)
    solver = solvers[variant]
    path = benchmark(solver.shortest_simple_path, graph, x, y)
    reference = solvers["exact"].shortest_simple_path(graph, x, y)
    assert (path is None) == (reference is None)
    if path is not None:
        assert len(path) == len(reference)


@pytest.mark.parametrize("variant", ["anchored", "exact"])
def test_medium_instance(benchmark, solvers, variant):
    # The literal summary algorithm is out of its depth here — that is
    # the measured point of the comparison.
    graph, x, y = _instance(80, seed=9)
    solver = solvers[variant]
    benchmark(solver.shortest_simple_path, graph, x, y)


def test_three_way_agreement(solvers):
    for seed in range(10):
        graph, x, y = _instance(8, seed=seed)
        answers = {
            name: solver.shortest_simple_path(graph, x, y)
            for name, solver in solvers.items()
        }
        lengths = {
            name: None if path is None else len(path)
            for name, path in answers.items()
        }
        assert len(set(lengths.values())) == 1, (seed, lengths)
