"""Rule registry: every enforced invariant, one instance each."""

from __future__ import annotations

from ..base import AnalyzerError, Rule
from .api_types import ApiTypesRule
from .fault_gate import FaultGateRule
from .hot_loop import HotLoopRule
from .lock_discipline import LockDisciplineRule
from .protocol_drift import ProtocolDriftRule
from .purity import SolverPurityRule
from .snapshot_layout import SnapshotLayoutRule
from .snapshot_readonly import SnapshotReadonlyRule

ALL_RULES: tuple[Rule, ...] = (
    LockDisciplineRule(),
    SolverPurityRule(),
    HotLoopRule(),
    SnapshotLayoutRule(),
    SnapshotReadonlyRule(),
    ProtocolDriftRule(),
    ApiTypesRule(),
    FaultGateRule(),
)


def get_rule(name: str) -> Rule:
    for rule in ALL_RULES:
        if rule.name == name:
            return rule
    raise AnalyzerError(
        "unknown rule %r (known: %s)"
        % (name, ", ".join(rule.name for rule in ALL_RULES))
    )


__all__ = ["ALL_RULES", "get_rule"]
