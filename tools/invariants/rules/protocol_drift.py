"""Rule ``protocol-drift``: one producer, one field order.

``protocol.RESULT_FIELDS`` pins the wire format of a single query
result; consumers stream-parse and byte-diff the output, so the field
list and its *order* are contractual.  The rule enforces:

* ``RESULT_FIELDS`` is a tuple of unique string literals;
* ``result_record()`` returns a dict literal whose keys are exactly
  ``RESULT_FIELDS``, in order (no ``**spread`` — it hides drift);
* the server handlers (``_query``/``_batch`` in ``service/server.py``)
  and the ``--jsonl`` writer (``_write_jsonl`` in ``cli.py``) build
  their payloads through ``result_record``/``batch_record`` rather
  than ad-hoc dicts — directly or via the module-local helpers the
  handler delegates its body to.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Project, Rule, SourceModule, Violation


def _find_function(
    tree: ast.AST, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def _calls_function(fn: ast.AST, callee: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == callee:
                return True
            if isinstance(func, ast.Attribute) and func.attr == callee:
                return True
    return False


def _called_names(fn: ast.AST) -> set[str]:
    names = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                names.add(func.attr)
    return names


def _reaches_function(tree: ast.AST, fn: ast.AST, callee: str) -> bool:
    """True when ``fn`` calls ``callee``, possibly through module-local
    helpers (a handler may delegate its body to ``_query_checked`` so a
    ``finally`` can wrap it; the payload producer travels with it)."""
    local = {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    seen: set[str] = set()
    frontier = [fn]
    while frontier:
        current = frontier.pop()
        if _calls_function(current, callee):
            return True
        for name in _called_names(current):
            if name in local and name not in seen:
                seen.add(name)
                frontier.append(local[name])
    return False


def _result_fields(tree: ast.AST) -> tuple[ast.stmt, list] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and (
                    target.id == "RESULT_FIELDS"
                ):
                    try:
                        value = ast.literal_eval(node.value)
                    except (ValueError, SyntaxError):
                        return node, []
                    return node, list(value)
    return None


class ProtocolDriftRule(Rule):
    name = "protocol-drift"
    description = (
        "server and --jsonl responses are produced by result_record/"
        "batch_record and match protocol.RESULT_FIELDS in order"
    )

    def path_in_scope(self, posix_relpath: str) -> bool:
        return posix_relpath.endswith((
            "service/protocol.py", "service/server.py", "repro/cli.py",
        ))

    def run(self, project: Project) -> Iterable[Violation]:
        for module in project.modules:
            if module.tree is None or not self.in_scope(project, module):
                continue
            posix = Project.posix(module)
            forced = self.name in module.forced_scope
            if posix.endswith("protocol.py") or (
                forced and "RESULT_FIELDS" in module.text
            ):
                yield from self._check_protocol(module)
            if posix.endswith("server.py") or (
                forced and "_query" in module.text
            ):
                yield from self._check_server(module)
            if posix.endswith("cli.py"):
                yield from self._check_cli(module)

    # -- protocol.py -------------------------------------------------------------

    def _check_protocol(self, module: SourceModule) -> Iterator[Violation]:
        found = _result_fields(module.tree)
        if found is None:
            yield module.violation(
                self.name, module.tree,
                "RESULT_FIELDS tuple not found at module level",
            )
            return
        anchor, fields = found
        if not fields or not all(isinstance(f, str) for f in fields):
            yield module.violation(
                self.name, anchor,
                "RESULT_FIELDS must be a non-empty tuple of strings",
            )
            return
        if len(set(fields)) != len(fields):
            yield module.violation(
                self.name, anchor,
                "RESULT_FIELDS contains duplicate field names",
            )
        fn = _find_function(module.tree, "result_record")
        if fn is None:
            yield module.violation(
                self.name, anchor,
                "result_record() producer not found next to RESULT_FIELDS",
            )
            return
        yield from self._check_record_keys(module, fn, fields)

    def _check_record_keys(
        self,
        module: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        fields: list[str],
    ) -> Iterator[Violation]:
        returns = [
            node for node in ast.walk(fn)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        dicts = [r.value for r in returns if isinstance(r.value, ast.Dict)]
        if not dicts:
            yield module.violation(
                self.name, fn,
                "result_record() must return a dict literal so the "
                "field order is statically checkable",
            )
            return
        for literal in dicts:
            keys: list[str] = []
            for key in literal.keys:
                if key is None:
                    yield module.violation(
                        self.name, literal,
                        "result_record() uses a **spread; field order "
                        "cannot be verified",
                    )
                    return
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.append(key.value)
                else:
                    yield module.violation(
                        self.name, key,
                        "result_record() keys must be string literals",
                    )
                    return
            if keys != fields:
                missing = [f for f in fields if f not in keys]
                extra = [k for k in keys if k not in fields]
                if missing or extra:
                    detail = []
                    if missing:
                        detail.append(
                            "missing %s" % ", ".join(sorted(missing))
                        )
                    if extra:
                        detail.append(
                            "not in RESULT_FIELDS: %s"
                            % ", ".join(sorted(extra))
                        )
                    message = "; ".join(detail)
                else:
                    message = "field order differs from RESULT_FIELDS"
                yield module.violation(
                    self.name, literal,
                    "result_record() drifts from RESULT_FIELDS (%s)"
                    % message,
                )

    # -- server.py / cli.py ------------------------------------------------------

    def _check_server(self, module: SourceModule) -> Iterator[Violation]:
        for handler, producer in (
            ("_query", "result_record"),
            ("_batch", "batch_record"),
        ):
            fn = _find_function(module.tree, handler)
            if fn is None:
                continue
            if not _reaches_function(module.tree, fn, producer):
                yield module.violation(
                    self.name, fn,
                    "server handler %s() does not build its payload via "
                    "protocol.%s(); ad-hoc response dicts drift from "
                    "RESULT_FIELDS" % (handler, producer),
                )

    def _check_cli(self, module: SourceModule) -> Iterator[Violation]:
        fn = _find_function(module.tree, "_write_jsonl")
        if fn is None:
            return
        if not _calls_function(fn, "result_record"):
            yield module.violation(
                self.name, fn,
                "_write_jsonl() does not serialise via "
                "protocol.result_record(); --jsonl output drifts from "
                "RESULT_FIELDS",
            )
