"""Rule ``snapshot-layout``: layout changes require a version bump.

The binary snapshot format in ``service/snapshot.py`` is defined by a
handful of module-level constants — the magic bytes, the per-version
array manifests, and the ``struct`` header formats.  Old snapshot
files live on disk across deploys, so any change to those constants
MUST come with a ``FORMAT_VERSION`` bump (plus reader support for the
old versions).

The rule hashes the layout constants into a fingerprint and compares
it against the committed ``tools/invariants/snapshot_layout.json``:

* fingerprint changed, version unchanged  -> violation (forgot the bump);
* fingerprint or version out of sync with the committed file
  -> violation (run ``repro-invariants --update-snapshot-fingerprint``
  after a deliberate, version-bumped change).
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Iterable, Iterator

from ..base import Project, Rule, SourceModule, Violation

#: Module-level constants that pin the on-disk layout (beyond the
#: version number itself).
LAYOUT_CONSTANTS = (
    "MAGIC",
    "SUPPORTED_VERSIONS",
    "_ARRAY_NAMES_V1",
    "_REVERSE_ARRAY_NAMES",
    "_REACH_ARRAY_NAMES",
)
VERSION_CONSTANT = "FORMAT_VERSION"


def _module_assignments(tree: ast.AST) -> dict[str, ast.expr]:
    values: dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    values[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                values[node.target.id] = node.value
    return values


def _literal(node: ast.expr):
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None


def _struct_formats(values: dict[str, ast.expr]) -> dict[str, str]:
    """``NAME -> fmt`` for every ``NAME = struct.Struct("fmt")``."""
    formats: dict[str, str] = {}
    for name, value in values.items():
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        is_struct = (
            (isinstance(func, ast.Attribute) and func.attr == "Struct")
            or (isinstance(func, ast.Name) and func.id == "Struct")
        )
        if is_struct and value.args:
            fmt = _literal(value.args[0])
            if isinstance(fmt, str):
                formats[name] = fmt
    return formats


def compute_layout(module: SourceModule) -> tuple[dict, list[str]]:
    """The canonical layout dict plus any missing constant names."""
    values = _module_assignments(module.tree)
    layout: dict = {}
    missing: list[str] = []
    for name in LAYOUT_CONSTANTS:
        if name not in values:
            missing.append(name)
            continue
        literal = _literal(values[name])
        if literal is None:
            missing.append(name)
            continue
        layout[name] = repr(literal)
    layout["struct_formats"] = _struct_formats(values)
    return layout, missing


def layout_fingerprint(layout: dict) -> str:
    canonical = json.dumps(layout, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def current_version(module: SourceModule) -> int | None:
    values = _module_assignments(module.tree)
    node = values.get(VERSION_CONSTANT)
    if node is None:
        return None
    version = _literal(node)
    return version if isinstance(version, int) else None


def snapshot_modules(project: Project) -> Iterator[SourceModule]:
    rule = SnapshotLayoutRule()
    for module in project.modules:
        if module.tree is not None and rule.in_scope(project, module):
            yield module


class SnapshotLayoutRule(Rule):
    name = "snapshot-layout"
    description = (
        "snapshot layout constants match the committed fingerprint; "
        "layout changes come with a FORMAT_VERSION bump"
    )

    def path_in_scope(self, posix_relpath: str) -> bool:
        return posix_relpath.endswith("service/snapshot.py")

    def run(self, project: Project) -> Iterable[Violation]:
        for module in project.modules:
            if module.tree is None or not self.in_scope(project, module):
                continue
            yield from self._check_module(project, module)

    def _check_module(
        self, project: Project, module: SourceModule
    ) -> Iterator[Violation]:
        layout, missing = compute_layout(module)
        anchor = module.tree
        for name in missing:
            yield module.violation(
                self.name,
                anchor,
                "layout constant %s is missing or not a literal; the "
                "snapshot format must be pinned by module-level "
                "constants" % name,
            )
        version = current_version(module)
        if version is None:
            yield module.violation(
                self.name,
                anchor,
                "missing integer %s constant" % VERSION_CONSTANT,
            )
            return
        if missing:
            return
        fingerprint = layout_fingerprint(layout)
        committed = self._committed(project)
        if committed is None:
            yield module.violation(
                self.name,
                anchor,
                "no committed layout fingerprint (%s); run "
                "`repro-invariants --update-snapshot-fingerprint`"
                % (project.snapshot_fingerprint or "<unset>"),
            )
            return
        old_version = committed.get("format_version")
        old_fingerprint = committed.get("fingerprint")
        if fingerprint != old_fingerprint and version == old_version:
            yield module.violation(
                self.name,
                anchor,
                "snapshot layout constants changed but %s is still %s; "
                "bump the version, keep a reader for the old layout, "
                "then run `repro-invariants --update-snapshot-fingerprint`"
                % (VERSION_CONSTANT, version),
            )
        elif fingerprint != old_fingerprint or version != old_version:
            yield module.violation(
                self.name,
                anchor,
                "committed snapshot fingerprint is stale (layout v%s vs "
                "committed v%s); run `repro-invariants "
                "--update-snapshot-fingerprint`" % (version, old_version),
            )

    @staticmethod
    def _committed(project: Project) -> dict | None:
        path = project.snapshot_fingerprint
        if path is None or not path.is_file():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None
