"""Rule ``solver-purity``: solver layers stay pure and re-entrant.

Modules under ``core/`` and ``algorithms/`` hold the paper's solver
cores; the engine calls them concurrently from batch worker threads,
so they must be pure in ``(graph, source, target, ctx)``:

* no module-level mutable state (dicts/lists/sets at import time);
* every solver entry point (``solve`` / ``exists`` /
  ``shortest_simple_path`` / ... on public ``*Solver`` / ``*Evaluator``
  classes, and module-level ``solve_*`` functions) accepts an
  :class:`~repro.execution.ExecutionContext` via a ``ctx`` parameter;
* no instance-attribute stores outside ``__init__`` (documented legacy
  stats shims carry ``# invariant: allow=solver-purity``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Project, Rule, SourceModule, Violation

MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray",
    "OrderedDict", "defaultdict", "deque", "Counter",
}
ENTRY_POINT_METHODS = {
    "solve",
    "exists",
    "shortest_simple_path",
    "any_simple_path",
    "bounded_simple_path",
    "count_simple_paths",
    "evaluate_all",
}
#: Module-level targets that are conventionally assigned at import time.
ALLOWED_MODULE_TARGETS = {"__all__"}


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CONSTRUCTORS
    return False


def _arg_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs}
    names.update(a.arg for a in args.args)
    names.update(a.arg for a in args.kwonlyargs)
    return names


def _solver_class(cls: ast.ClassDef) -> bool:
    return not cls.name.startswith("_") and (
        cls.name.endswith("Solver") or cls.name.endswith("Evaluator")
    )


class SolverPurityRule(Rule):
    name = "solver-purity"
    description = (
        "core/ and algorithms/ define no module-level mutable state; "
        "solver entry points thread an ExecutionContext (`ctx`)"
    )

    def path_in_scope(self, posix_relpath: str) -> bool:
        return "/core/" in posix_relpath or "/algorithms/" in posix_relpath

    def run(self, project: Project) -> Iterable[Violation]:
        for module in project.modules:
            if module.tree is None or not self.in_scope(project, module):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Violation]:
        for node in module.tree.body:
            yield from self._check_module_state(module, node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_entry_point(
                    module, node, is_method=False
                )
            if isinstance(node, ast.ClassDef) and _solver_class(node):
                yield from self._check_solver_class(module, node)

    def _check_module_state(
        self, module: SourceModule, node: ast.stmt
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if all(name in ALLOWED_MODULE_TARGETS for name in names):
            return
        if _is_mutable_value(value):
            yield module.violation(
                self.name,
                node,
                "module-level mutable state %r in a solver module; hold "
                "per-query state in the ExecutionContext instead"
                % (", ".join(names) or "<target>"),
            )

    def _check_solver_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        for node in cls.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in ENTRY_POINT_METHODS:
                yield from self._check_entry_point(
                    module, node, is_method=True, cls_name=cls.name
                )
            if node.name != "__init__":
                yield from self._check_instance_stores(module, cls, node)

    def _check_entry_point(
        self,
        module: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        is_method: bool,
        cls_name: str | None = None,
    ) -> Iterator[Violation]:
        if is_method:
            label = "%s.%s" % (cls_name, fn.name)
        else:
            if fn.name.startswith("_") or not fn.name.startswith("solve"):
                return
            label = fn.name
        if "ctx" not in _arg_names(fn):
            yield module.violation(
                self.name,
                fn,
                "solver entry point %s() does not accept an "
                "ExecutionContext (`ctx=None` parameter)" % label,
            )

    def _check_instance_stores(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    base = element
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        if (isinstance(base, ast.Attribute)
                                and isinstance(base.value, ast.Name)
                                and base.value.id == "self"):
                            yield module.violation(
                                self.name,
                                node,
                                "%s.%s() stores instance state "
                                "(`self.%s`); solvers must be re-entrant "
                                "— thread state through ctx"
                                % (cls.name, fn.name, base.attr),
                            )
                            base = None
                            break
                        base = base.value
