"""Rule ``hot-loop``: id-native loops stay allocation- and lookup-free.

Functions marked ``# invariant: hot-loop`` are the solver inner loops
that the CSR migration made integer-native.  Inside any loop body of
such a function:

* no calls to name-based ``DbGraph`` accessors (``successors``,
  ``out_edges``, ``has_edge``, ...) — these hash vertex *names* per
  edge and silently reintroduce the dict-lookup cost the CSR views
  removed;
* no f-string/``repr()``/``str.format`` allocation — message
  formatting belongs after the loop (or in the raise path outside it).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Project, Rule, SourceModule, Violation

NAME_BASED_ACCESSORS = {
    "successors",
    "predecessors",
    "sorted_successors",
    "sorted_out_edges",
    "out_edges",
    "in_edges",
    "has_edge",
    "has_vertex",
    "require_vertex",
}


class HotLoopRule(Rule):
    name = "hot-loop"
    description = (
        "`# invariant: hot-loop` functions keep loop bodies free of "
        "name-based graph accessors and f-string/repr allocation"
    )

    def run(self, project: Project) -> Iterable[Violation]:
        for module in project.modules:
            if module.tree is None:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if module.pragma_on_def(node, "hot-loop"):
                    yield from self._check_function(module, node)

    def _check_function(
        self,
        module: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        for node in ast.walk(fn):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                for child in node.body + node.orelse:
                    yield from self._check_loop_body(module, fn, child)

    def _check_loop_body(
        self,
        module: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
    ) -> Iterator[Violation]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.JoinedStr):
                yield module.violation(
                    self.name,
                    sub,
                    "%s(): f-string allocation inside a hot loop body"
                    % fn.name,
                )
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (isinstance(func, ast.Name)
                        and func.id == "repr"):
                    yield module.violation(
                        self.name,
                        sub,
                        "%s(): repr() allocation inside a hot loop body"
                        % fn.name,
                    )
                elif isinstance(func, ast.Attribute):
                    if func.attr in NAME_BASED_ACCESSORS:
                        yield module.violation(
                            self.name,
                            sub,
                            "%s(): name-based graph accessor .%s() inside "
                            "a hot loop body; use the id-native CSR view "
                            "API instead" % (fn.name, func.attr),
                        )
                    elif (func.attr == "format"
                          and isinstance(func.value, ast.Constant)
                          and isinstance(func.value.value, str)):
                        yield module.violation(
                            self.name,
                            sub,
                            "%s(): str.format() allocation inside a hot "
                            "loop body" % fn.name,
                        )
