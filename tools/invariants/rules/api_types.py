"""Rule ``api-types``: the public engine/service API is fully annotated.

``engine/``, ``service/`` and ``graphs/view.py`` are the surfaces
other code (and external users, via ``py.typed``) programs against, so
every public function and method there must carry complete parameter
and return annotations for mypy to check callers.

"Public" means module-level ``def``s and methods of public classes
whose names do not start with ``_`` (``__init__`` is included, minus
its return annotation; other dunders are mypy's business).  Known
not-yet-typed internals live in the committed baseline file
(``tools/invariants/annotations_baseline.txt``, one
``path::qualname`` per line, regenerated with
``repro-invariants --update-annotations-baseline``); shrink it, never
grow it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Project, Rule, SourceModule, Violation


def baseline_key(module: SourceModule, qualname: str) -> str:
    return "%s::%s" % (Project.posix(module), qualname)


def load_baseline(project: Project) -> set[str]:
    path = project.annotations_baseline
    if path is None or not path.is_file():
        return set()
    entries = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def _checked(name: str) -> bool:
    if name == "__init__":
        return True
    if name.startswith("__") and name.endswith("__"):
        return False  # other dunders: mypy's business
    return not name.startswith("_")


def _missing_annotations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> list[str]:
    missing: list[str] = []
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and positional:
        positional = positional[1:]  # self / cls
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if fn.returns is None and fn.name != "__init__":
        missing.append("return")
    return missing


class ApiTypesRule(Rule):
    name = "api-types"
    description = (
        "public engine/, service/ and graphs/view.py signatures carry "
        "complete type annotations (baseline-gated)"
    )

    def path_in_scope(self, posix_relpath: str) -> bool:
        return (
            "repro/engine/" in posix_relpath
            or "repro/service/" in posix_relpath
            or posix_relpath.endswith("graphs/view.py")
        )

    def run(self, project: Project) -> Iterable[Violation]:
        baseline = load_baseline(project)
        for module in project.modules:
            if module.tree is None or not self.in_scope(project, module):
                continue
            for qualname, fn in self.public_functions(module):
                missing = _missing_annotations(
                    fn, is_method="." in qualname
                )
                if not missing:
                    continue
                if baseline_key(module, qualname) in baseline:
                    continue
                yield module.violation(
                    self.name,
                    fn,
                    "public %s() is missing annotations for: %s"
                    % (qualname, ", ".join(missing)),
                )

    @staticmethod
    def public_functions(
        module: SourceModule,
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _checked(node.name) and node.name != "__init__":
                    yield node.name, node
            elif isinstance(node, ast.ClassDef) and (
                not node.name.startswith("_")
            ):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        if _checked(sub.name):
                            yield "%s.%s" % (node.name, sub.name), sub
