"""Rule ``fault-gate``: fault hooks are unreachable without a plan.

The serving tier plants fault-injection hooks *inside* production code
paths (:mod:`repro.service.faults`): the worker request loop, the
snapshot parser, registry spooling and deadline mapping all call into
the faults module on every request.  That is only safe under two
contracts, which this rule enforces statically:

* **Hooks are inert by construction.**  Every hook in
  ``service/faults.py`` — any module-level function that reads the
  ``_ACTIVE`` plan, other than the sanctioned installer/propagation
  helpers — must *begin* with the literal guard
  ``if _ACTIVE is None: return ...``.  With no plan installed, a hook
  is one global read and a return; a hook that does work before the
  guard would tax (or fault!) production traffic with chaos disabled.
* **Production code never installs a plan.**  Modules under
  ``repro/`` may call the hooks and the propagation helpers
  (``active_spec`` / ``install_spec`` / ``install_from_env`` /
  ``active``), but may never construct a ``FaultPlan``, call
  ``install()`` / ``uninstall()``, or poke ``faults._ACTIVE``
  directly.  Plans enter the process exactly two ways — a test calls
  ``install()``, or the operator sets ``REPRO_FAULTS`` and the CLI
  calls ``install_from_env()`` at startup — so a fault can never be
  reachable unless someone explicitly asked for chaos.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Project, Rule, SourceModule, Violation

#: Functions in the faults module allowed to touch ``_ACTIVE`` without
#: the inert guard: the install/uninstall/propagation surface itself.
INSTALLER_FUNCS = frozenset({
    "install",
    "uninstall",
    "active",
    "active_spec",
    "install_spec",
    "install_from_env",
})

#: faults-module attributes production code must never call.
FORBIDDEN_CALLS = frozenset({"install", "uninstall", "FaultPlan"})

#: Names production code must never import from the faults module.
FORBIDDEN_IMPORTS = frozenset({"install", "uninstall", "FaultPlan"})


def _is_faults_base(node: ast.AST) -> bool:
    """True when ``node`` names the faults module (``faults`` / ``x.faults``)."""
    if isinstance(node, ast.Name):
        return node.id == "faults"
    if isinstance(node, ast.Attribute):
        return node.attr == "faults"
    return False


def _is_inert_guard(stmt: ast.stmt) -> bool:
    """True for ``if _ACTIVE is None: return ...`` (returns only, no else)."""
    if not isinstance(stmt, ast.If) or stmt.orelse:
        return False
    test = stmt.test
    if not (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "_ACTIVE"
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return False
    return all(isinstance(body, ast.Return) for body in stmt.body)


def _reads_active(fn: ast.FunctionDef) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == "_ACTIVE"
        for node in ast.walk(fn)
    )


class FaultGateRule(Rule):
    name = "fault-gate"
    description = (
        "fault hooks start with the 'if _ACTIVE is None' inert guard, "
        "and production code never installs a FaultPlan itself"
    )

    def path_in_scope(self, posix_relpath: str) -> bool:
        return "repro/" in posix_relpath and "tests/" not in posix_relpath

    def run(self, project: Project) -> Iterable[Violation]:
        for module in project.modules:
            if module.tree is None or not self.in_scope(project, module):
                continue
            posix = Project.posix(module)
            is_faults = posix.endswith("service/faults.py")
            # A fixture opting in via # invariant-scope: declares its
            # hooks with a module-level _ACTIVE, same as the real module.
            declares_active = any(
                isinstance(stmt, (ast.Assign, ast.AnnAssign))
                and any(
                    isinstance(target, ast.Name) and target.id == "_ACTIVE"
                    for target in (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                )
                for stmt in module.tree.body
            )
            if is_faults or declares_active:
                yield from self._check_hooks(module)
            if not is_faults:
                yield from self._check_production(module)

    # -- the faults module: hooks must be inert-guarded ----------------------------

    def _check_hooks(self, module: SourceModule) -> Iterator[Violation]:
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            if stmt.name in INSTALLER_FUNCS or stmt.name.startswith("_"):
                continue
            if not _reads_active(stmt):
                continue
            body = stmt.body
            # Skip a leading docstring before looking for the guard.
            if body and isinstance(body[0], ast.Expr) and isinstance(
                body[0].value, ast.Constant
            ) and isinstance(body[0].value.value, str):
                body = body[1:]
            if not body or not _is_inert_guard(body[0]):
                yield module.violation(
                    self.name,
                    stmt,
                    "fault hook %s() must start with 'if _ACTIVE is "
                    "None: return ...' so it is one global read when "
                    "no FaultPlan is installed" % stmt.name,
                )

    # -- production modules: never install a plan ----------------------------------

    def _check_production(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[-1] == "faults":
                    for alias in node.names:
                        if alias.name in FORBIDDEN_IMPORTS:
                            yield module.violation(
                                self.name,
                                node,
                                "importing %r from the faults module — "
                                "production code may only use the gated "
                                "hooks and the active_spec/install_spec/"
                                "install_from_env propagation helpers"
                                % alias.name,
                            )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and (
                        target.attr == "_ACTIVE"
                        and _is_faults_base(target.value)
                    ):
                        yield module.violation(
                            self.name,
                            node,
                            "assigning faults._ACTIVE directly — plans "
                            "are installed only via install() in tests "
                            "or install_from_env() at CLI startup",
                        )

    def _check_call(
        self, module: SourceModule, call: ast.Call
    ) -> Iterator[Violation]:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in FORBIDDEN_CALLS and _is_faults_base(func.value):
                yield module.violation(
                    self.name,
                    call,
                    "faults.%s() in production code — a FaultPlan may "
                    "only be installed explicitly by a test or via the "
                    "REPRO_FAULTS env var at CLI startup" % func.attr,
                )
        elif isinstance(func, ast.Name) and func.id == "FaultPlan":
            yield module.violation(
                self.name,
                call,
                "constructing FaultPlan in production code — plans are "
                "built only by tests or install_from_env()",
            )
