"""Rule ``lock-discipline``: guarded state only under ``with self._lock``.

A class that creates a ``threading.Lock``/``RLock`` in ``__init__``
is a lock-guarded class.  Its *guarded attributes* are inferred as:

* attributes initialised to a mutable container in ``__init__``
  (``{}``, ``[]``, ``set()``, ``OrderedDict()``, ``deque()``, ...);
* attributes stored or ``+=``-mutated in any method other than
  ``__init__`` (shared counters, generation markers);
* attributes mutated through a method call (``self._lru.pop(...)``).

Every access to a guarded attribute outside ``__init__`` must then be
lexically inside a ``with self.<lock>:`` block.  Private helpers whose
contract is "caller holds the lock" carry a ``# invariant: holds-lock``
pragma on their ``def`` line and are exempt (their call sites are
checked instead, as ordinary attribute accesses are).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Project, Rule, SourceModule, Violation

LOCK_FACTORIES = {"Lock", "RLock"}
MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray",
    "OrderedDict", "defaultdict", "deque", "Counter",
}
MUTATOR_METHODS = {
    "append", "add", "insert", "extend", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "move_to_end",
}


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``X`` for a plain one-level attribute access."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return node.attr
    return None


def _base_self_attr(node: ast.AST) -> str | None:
    """The first attribute off ``self`` in a target chain.

    ``self.stats.queries`` -> ``stats``; ``self._lru[k]`` -> ``_lru``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        name = _self_attr(node)
        if name is not None:
            return name
        node = node.value
    return None


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node) in MUTABLE_CONSTRUCTORS
    return False


def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for method in _methods(cls):
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if _call_name(node.value) not in LOCK_FACTORIES:
                continue
            for target in node.targets:
                name = _self_attr(target)
                if name is not None:
                    locks.add(name)
    return locks


def _stored_attrs(node: ast.AST) -> Iterator[str]:
    """Base self-attrs stored/mutated by an assignment statement."""
    if isinstance(node, ast.Assign):
        targets: Iterable[ast.AST] = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = node.targets
    else:
        return
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                name = _base_self_attr(element)
                if name is not None:
                    yield name
        else:
            name = _base_self_attr(target)
            if name is not None:
                yield name


def _guarded_attrs(cls: ast.ClassDef, locks: set[str]) -> set[str]:
    guarded: set[str] = set()
    for method in _methods(cls):
        is_init = method.name == "__init__"
        for node in ast.walk(method):
            for name in _stored_attrs(node):
                if is_init:
                    continue  # construction happens-before publication
                guarded.add(name)
            if is_init and isinstance(node, ast.Assign):
                if _is_mutable_value(node.value):
                    for target in node.targets:
                        name = _self_attr(target)
                        if name is not None:
                            guarded.add(name)
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATOR_METHODS):
                    name = _base_self_attr(func.value)
                    if name is not None and not is_init:
                        guarded.add(name)
    return guarded - locks


def _is_lock_item(item: ast.withitem, locks: set[str]) -> bool:
    name = _self_attr(item.context_expr)
    return name is not None and name in locks


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "guarded cache/counter state of lock-carrying classes is only "
        "touched inside `with self._lock:` blocks"
    )

    def run(self, project: Project) -> Iterable[Violation]:
        for module in project.modules:
            if module.tree is None or not self.in_scope(project, module):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        locks = _lock_attrs(cls)
        if not locks:
            return
        guarded = _guarded_attrs(cls, locks)
        if not guarded:
            return
        for method in _methods(cls):
            if method.name == "__init__":
                continue
            if module.pragma_on_def(method, "holds-lock"):
                continue
            yield from self._check_method(module, cls, method, locks, guarded)

    def _check_method(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        locks: set[str],
        guarded: set[str],
    ) -> Iterator[Violation]:
        def scan(node: ast.AST, covered: bool) -> Iterator[Violation]:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                takes_lock = any(
                    _is_lock_item(item, locks) for item in node.items
                )
                for item in node.items:
                    yield from scan(item, covered)
                for child in node.body:
                    yield from scan(child, covered or takes_lock)
                return
            name = _self_attr(node)
            if name is not None and name in guarded and not covered:
                yield module.violation(
                    self.name,
                    node,
                    "%s.%s: access to lock-guarded attribute %r outside "
                    "`with self.%s:` (wrap it, or mark the helper with "
                    "`# invariant: holds-lock`)"
                    % (cls.name, method.name, name, sorted(locks)[0]),
                )
            for child in ast.iter_child_nodes(node):
                yield from scan(child, covered)

        for statement in method.body:
            yield from scan(statement, False)
