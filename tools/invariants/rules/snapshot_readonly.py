"""Rule ``snapshot-readonly``: attached snapshot arrays are never written.

``attach_snapshot`` builds an :class:`~repro.service.snapshot.AttachedGraph`
whose CSR arrays are ``memoryview.cast("q")`` slices of one read-only
``mmap`` — the same physical pages every pre-forked worker maps.  A
write through any of those views would either raise ``TypeError`` at
runtime (the mapping is ``ACCESS_READ``) or, worse, silently corrupt
the graph for every process sharing the mapping if the access mode
ever regressed.  So the serving tier must treat the attached arrays as
frozen: no item stores, no ``del``, no in-place mutator calls, and no
closing/releasing the backing mapping outside the attach error path.

The rule walks ``service/snapshot.py`` and ``service/workers.py`` (plus
any module opting in via ``# invariant-scope: snapshot-readonly``) and
flags:

* subscript stores, augmented stores, or ``del`` reaching through a
  guarded attribute (``x._raw["out_targets"][i] = v``);
* in-place mutator calls (``append``/``extend``/``byteswap``/...) on a
  guarded attribute or anything subscripted out of one;
* lifecycle calls (``close``/``release``/``resize``...) on a held
  ``_mapping`` — dropping the last reference is the only sanctioned
  teardown, because exported memoryviews make an explicit ``close()``
  raise ``BufferError`` at best.

Rebinding the attributes themselves (``self._raw = dict(raw)``) is
fine — that mutates the Python object graph, not the mapped pages.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Project, Rule, SourceModule, Violation

#: Attributes that hold (or directly index into) mmap-backed arrays on
#: an attached graph/view: the raw name->array dict and mapping handle,
#: the per-label CSR dicts, the attached view's CSR triples, and the
#: thawed reachability index whose comp_of aliases the mapping.
GUARDED_ATTRS = frozenset({
    "_raw",
    "_raw_out",
    "_raw_in",
    "_mapping",
    "_label_indptr",
    "_label_targets",
    "_rev_label_indptr",
    "_rev_label_sources",
    "_reach_parts",
})

#: In-place mutators of array/bytearray/memoryview/dict values.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear",
    "sort", "reverse",
    "byteswap", "frombytes", "fromfile", "fromlist", "fromunicode",
    "update", "setdefault", "popitem",
})

#: mmap lifecycle/mutation calls that must not target a held mapping.
MAPPING_METHODS = frozenset({
    "close", "release", "resize", "write", "write_byte", "move",
    "seek", "flush",
})


def _guarded_attr(node: ast.AST) -> str | None:
    """The first guarded attribute name on ``node``'s access chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        if isinstance(node, ast.Attribute):
            if node.attr in GUARDED_ATTRS:
                return node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            node = node.func
    return None


def _store_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    else:
        return []
    flat: list[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flat.extend(target.elts)
        else:
            flat.append(target)
    return flat


class SnapshotReadonlyRule(Rule):
    name = "snapshot-readonly"
    description = (
        "attached snapshot arrays are read-only: no item stores, "
        "mutator calls, or mapping teardown through guarded attributes"
    )

    def path_in_scope(self, posix_relpath: str) -> bool:
        return posix_relpath.endswith(
            "service/snapshot.py"
        ) or posix_relpath.endswith("service/workers.py")

    def run(self, project: Project) -> Iterable[Violation]:
        for module in project.modules:
            if module.tree is None or not self.in_scope(project, module):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.stmt):
                yield from self._check_stores(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_stores(
        self, module: SourceModule, node: ast.stmt
    ) -> Iterator[Violation]:
        verb = "del of" if isinstance(node, ast.Delete) else "store into"
        for target in _store_targets(node):
            # Only *item* stores touch the mapped pages; rebinding the
            # attribute itself is an ordinary Python assignment.
            if not isinstance(target, ast.Subscript):
                continue
            attr = _guarded_attr(target.value)
            if attr is not None:
                yield module.violation(
                    self.name,
                    node,
                    "%s a subscript of %r — attached snapshot arrays "
                    "are mmapped read-only and shared across worker "
                    "processes; copy before mutating" % (verb, attr),
                )

    def _check_call(
        self, module: SourceModule, call: ast.Call
    ) -> Iterator[Violation]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        attr = _guarded_attr(func.value)
        if attr is None:
            return
        if attr == "_mapping" and func.attr in MAPPING_METHODS:
            yield module.violation(
                self.name,
                call,
                "%s() on a held snapshot mapping — exported "
                "memoryviews make explicit teardown unsafe; drop the "
                "graph reference instead" % func.attr,
            )
        elif func.attr in MUTATOR_METHODS:
            yield module.violation(
                self.name,
                call,
                "in-place %s() through %r — attached snapshot arrays "
                "are mmapped read-only and shared across worker "
                "processes; copy before mutating" % (func.attr, attr),
            )
