"""Core data model of the invariant analyzer.

A :class:`SourceModule` is one parsed ``.py`` file plus the comment
directives extracted from it; a :class:`Project` is the set of modules
under analysis; a :class:`Rule` inspects a project and yields
:class:`Violation` records.

Comment directives (all spelled ``# invariant: ...``):

``# invariant: allow=<rule>[,<rule>...]``
    Suppress the named rules on this line, or — when the comment is on
    a line of its own — on the line directly below it.  ``allow=all``
    suppresses every rule.

``# invariant: hot-loop``
    Marks the ``def`` on this line (or the line below the comment) as a
    hot loop subject to the ``hot-loop`` rule.

``# invariant: holds-lock``
    Marks the ``def`` as a private helper whose callers are required
    to hold the instance lock; the ``lock-discipline`` rule treats its
    body as lock-covered.

``# invariant-scope: <rule>[,<rule>...]``
    Forces the named rules in scope for this file regardless of its
    path.  Used by the seeded-violation fixtures under
    ``tools/invariants/fixtures/`` so they stay self-contained.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

_DIRECTIVE_RE = re.compile(r"#\s*invariant:\s*(?P<body>[\w=,\- ]+)")
_SCOPE_RE = re.compile(r"#\s*invariant-scope:\s*(?P<rules>[\w,\- ]+)")

#: Pragmas that attach to a ``def`` (on its line or the line above).
PRAGMAS = ("hot-loop", "holds-lock")


class AnalyzerError(Exception):
    """Unrecoverable analyzer failure (bad paths, internal errors)."""


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return "%s:%d:%d: [%s] %s" % (
            self.path, self.line, self.col, self.rule, self.message
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class SourceModule:
    """One parsed source file plus its comment directives."""

    def __init__(self, path: Path, relpath: str, text: str):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree: ast.AST | None = None
        self.parse_error: SyntaxError | None = None
        #: line -> set of rule names allowed (suppressed) on that line.
        self.allowed: dict[int, set[str]] = {}
        #: line -> set of pragma names attached to that line.
        self.pragmas: dict[int, set[str]] = {}
        #: rules forced in scope for this file by ``# invariant-scope:``.
        self.forced_scope: set[str] = set()
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as err:
            self.parse_error = err
        self._scan_comments()

    # -- comment directives ------------------------------------------------------

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # Fall back to a line scan; good enough for directives.
            comments = [
                (lineno, line[line.index("#"):])
                for lineno, line in enumerate(self.text.splitlines(), start=1)
                if "#" in line
            ]
        lines = self.text.splitlines()
        for lineno, comment in comments:
            scope = _SCOPE_RE.search(comment)
            if scope:
                self.forced_scope.update(_split_names(scope.group("rules")))
            match = _DIRECTIVE_RE.search(comment)
            if not match:
                continue
            body = match.group("body").strip()
            # A comment on its own line applies to the line below it.
            own_line = lineno <= len(lines) and (
                lines[lineno - 1].lstrip().startswith("#")
            )
            target = lineno + 1 if own_line else lineno
            if body.startswith("allow="):
                names = _split_names(body[len("allow="):])
                self.allowed.setdefault(target, set()).update(names)
                if own_line:
                    # Also honour same-line placement of the comment.
                    self.allowed.setdefault(lineno, set()).update(names)
            elif body in PRAGMAS:
                self.pragmas.setdefault(target, set()).add(body)
                if own_line:
                    self.pragmas.setdefault(lineno, set()).add(body)

    def pragma_on_def(self, node: ast.AST, name: str) -> bool:
        """True if ``# invariant: <name>`` is attached to this ``def``."""
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return False
        return name in self.pragmas.get(lineno, ())

    def suppressed(self, violation: Violation) -> bool:
        allowed = self.allowed.get(violation.line, ())
        return violation.rule in allowed or "all" in allowed

    # -- helpers -----------------------------------------------------------------

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=rule,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class Project:
    """The set of modules under analysis plus analyzer options."""

    root: Path
    modules: list[SourceModule] = field(default_factory=list)
    #: Path of the committed snapshot-layout fingerprint file.
    snapshot_fingerprint: Path | None = None
    #: Path of the committed annotations baseline file.
    annotations_baseline: Path | None = None

    def find(self, *suffixes: str) -> Iterator[SourceModule]:
        """Modules whose relative path ends with any given suffix."""
        for module in self.modules:
            posix = self.posix(module)
            if any(posix.endswith(suffix) for suffix in suffixes):
                yield module

    @staticmethod
    def posix(module: SourceModule) -> str:
        return module.relpath.replace("\\", "/")


class Rule:
    """Base class: one named invariant checked over a project."""

    name: str = ""
    description: str = ""

    def run(self, project: Project) -> Iterable[Violation]:
        raise NotImplementedError

    def in_scope(self, project: Project, module: SourceModule) -> bool:
        """Whether this rule applies to ``module`` (path or forced)."""
        if self.name in module.forced_scope:
            return True
        return self.path_in_scope(Project.posix(module))

    def path_in_scope(self, posix_relpath: str) -> bool:
        return True


def _split_names(raw: str) -> list[str]:
    return [name.strip() for name in raw.split(",") if name.strip()]


def load_module(path: Path, root: Path) -> SourceModule:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        raise AnalyzerError("cannot read %s: %s" % (path, err)) from err
    try:
        relpath = str(path.relative_to(root))
    except ValueError:
        relpath = str(path)
    return SourceModule(path=path, relpath=relpath, text=text)


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    found: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if any(part.startswith(".") for part in sub.parts):
                    continue
                if "__pycache__" in sub.parts:
                    continue
                found.add(sub)
        else:
            raise AnalyzerError("no such file or directory: %s" % path)
    return sorted(found)
