#!/usr/bin/env python3
"""Uninstalled entry point: ``python tools/invariants/run.py [paths]``.

Equivalent to the ``repro-invariants`` console script, for checkouts
where nothing is pip-installed (CI bootstrap, fresh clones).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from invariants.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
