"""Analysis driver: load modules, run rules, filter suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from .base import Project, Violation, collect_files, load_module
from .rules import ALL_RULES, get_rule


def build_project(
    paths: Iterable[Path],
    root: Path,
    snapshot_fingerprint: Path | None = None,
    annotations_baseline: Path | None = None,
) -> Project:
    files = collect_files(paths)
    modules = [load_module(path, root) for path in files]
    return Project(
        root=root,
        modules=modules,
        snapshot_fingerprint=snapshot_fingerprint,
        annotations_baseline=annotations_baseline,
    )


def run_analysis(
    paths: Iterable[Path],
    root: Path,
    rule_names: Sequence[str] | None = None,
    snapshot_fingerprint: Path | None = None,
    annotations_baseline: Path | None = None,
) -> tuple[list[Violation], Project]:
    """Run the selected rules and return surviving violations.

    Violations suppressed by ``# invariant: allow=`` comments are
    dropped; parse failures surface as ``parse-error`` violations so a
    broken file can never silently pass.
    """
    project = build_project(
        paths, root,
        snapshot_fingerprint=snapshot_fingerprint,
        annotations_baseline=annotations_baseline,
    )
    violations: list[Violation] = []
    for module in project.modules:
        if module.parse_error is not None:
            err = module.parse_error
            violations.append(Violation(
                rule="parse-error",
                path=module.relpath,
                line=err.lineno or 1,
                col=(err.offset or 0) + 1,
                message="cannot parse: %s" % err.msg,
            ))
    if rule_names is None:
        rules = list(ALL_RULES)
    else:
        rules = [get_rule(name) for name in rule_names]
    for rule in rules:
        violations.extend(rule.run(project))

    by_path = {module.relpath: module for module in project.modules}
    kept = []
    for violation in violations:
        module = by_path.get(violation.path)
        if violation.rule == "parse-error" or module is None:
            kept.append(violation)
        elif not module.suppressed(violation):
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return kept, project
