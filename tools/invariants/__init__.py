"""AST-based invariant analyzer for the RSPQ engine repo.

The engine's load-bearing invariants — lock discipline on shared
caches, solver purity, hot-loop hygiene, snapshot layout versioning,
wire-protocol field order, public-API annotation completeness — were
documented in prose (CHANGES.md, docstrings) but never checked by a
machine.  This package turns each one into a rule over the parsed AST
of the source tree, with per-line suppression comments, JSON or human
output, and a CI-friendly exit-code contract.

Usage::

    python tools/invariants/run.py src/repro            # human output
    python tools/invariants/run.py src/repro --json     # machine output
    repro-invariants --list-rules                       # installed entry point

Exit codes: 0 = clean, 1 = violations found, 2 = usage/internal error.
"""

from .base import (
    AnalyzerError,
    Project,
    Rule,
    SourceModule,
    Violation,
)
from .engine import run_analysis
from .rules import ALL_RULES, get_rule

__all__ = [
    "ALL_RULES",
    "AnalyzerError",
    "Project",
    "Rule",
    "SourceModule",
    "Violation",
    "get_rule",
    "run_analysis",
]
