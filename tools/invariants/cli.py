"""Command-line front end: ``repro-invariants``.

Exit codes: 0 = clean, 1 = violations found, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .base import AnalyzerError, Project
from .engine import build_project, run_analysis
from .rules import ALL_RULES, get_rule
from .rules.api_types import ApiTypesRule, baseline_key, _missing_annotations
from .rules.snapshot_layout import (
    compute_layout,
    current_version,
    layout_fingerprint,
    snapshot_modules,
)

_TOOL_DIR = Path(__file__).resolve().parent
DEFAULT_SNAPSHOT_FINGERPRINT = _TOOL_DIR / "snapshot_layout.json"
DEFAULT_ANNOTATIONS_BASELINE = _TOOL_DIR / "annotations_baseline.txt"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-invariants",
        description=(
            "AST-based invariant analyzer for the RSPQ engine: lock "
            "discipline, solver purity, hot-loop hygiene, snapshot "
            "layout versioning, protocol drift, API annotations."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repo root used to relativize reported paths (default: cwd)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--snapshot-fingerprint", metavar="PATH",
        default=str(DEFAULT_SNAPSHOT_FINGERPRINT),
        help="committed snapshot layout fingerprint file",
    )
    parser.add_argument(
        "--annotations-baseline", metavar="PATH",
        default=str(DEFAULT_ANNOTATIONS_BASELINE),
        help="committed api-types baseline file",
    )
    parser.add_argument(
        "--update-snapshot-fingerprint", action="store_true",
        help="recompute and rewrite the snapshot layout fingerprint "
             "(after a deliberate, version-bumped layout change)",
    )
    parser.add_argument(
        "--update-annotations-baseline", action="store_true",
        help="rewrite the api-types baseline from the current tree",
    )
    return parser


def _update_snapshot_fingerprint(project: Project, path: Path) -> int:
    modules = list(snapshot_modules(project))
    if not modules:
        print(
            "error: no snapshot module in the analyzed paths",
            file=sys.stderr,
        )
        return 2
    module = modules[0]
    layout, missing = compute_layout(module)
    version = current_version(module)
    if missing or version is None:
        print(
            "error: cannot fingerprint %s (missing: %s)"
            % (module.relpath, ", ".join(missing) or "FORMAT_VERSION"),
            file=sys.stderr,
        )
        return 2
    payload = {
        "format_version": version,
        "fingerprint": layout_fingerprint(layout),
        "source": Project.posix(module),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print("wrote %s (format v%d)" % (path, version))
    return 0


def _update_annotations_baseline(project: Project, path: Path) -> int:
    rule = ApiTypesRule()
    entries = []
    for module in project.modules:
        if module.tree is None or not rule.in_scope(project, module):
            continue
        for qualname, fn in rule.public_functions(module):
            if _missing_annotations(fn, is_method="." in qualname):
                entries.append(baseline_key(module, qualname))
    header = (
        "# api-types baseline: public signatures still missing\n"
        "# annotations. Regenerate with\n"
        "# `repro-invariants --update-annotations-baseline`.\n"
        "# Shrink this file, never grow it.\n"
    )
    path.write_text(
        header + "".join(entry + "\n" for entry in sorted(entries)),
        encoding="utf-8",
    )
    print("wrote %s (%d entries)" % (path, len(entries)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print("%-16s %s" % (rule.name, rule.description))
        return 0

    root = Path(args.root).resolve()
    raw_paths = args.paths or ["src/repro"]
    paths = [Path(p) for p in raw_paths]
    fingerprint = Path(args.snapshot_fingerprint)
    baseline = Path(args.annotations_baseline)

    try:
        if args.rules:
            for name in args.rules:
                get_rule(name)  # fail fast on typos
        if args.update_snapshot_fingerprint or (
            args.update_annotations_baseline
        ):
            project = build_project(
                paths, root,
                snapshot_fingerprint=fingerprint,
                annotations_baseline=baseline,
            )
            status = 0
            if args.update_snapshot_fingerprint:
                status = _update_snapshot_fingerprint(project, fingerprint)
            if status == 0 and args.update_annotations_baseline:
                status = _update_annotations_baseline(project, baseline)
            return status
        violations, project = run_analysis(
            paths, root,
            rule_names=args.rules,
            snapshot_fingerprint=fingerprint,
            annotations_baseline=baseline,
        )
    except AnalyzerError as err:
        print("error: %s" % err, file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps({
            "violations": [v.as_dict() for v in violations],
            "checked_files": len(project.modules),
            "rules": [rule.name for rule in ALL_RULES],
        }, indent=2))
    else:
        for violation in violations:
            print(violation.render())
        print(
            "%d violation%s in %d file%s checked."
            % (
                len(violations),
                "" if len(violations) == 1 else "s",
                len(project.modules),
                "" if len(project.modules) == 1 else "s",
            )
        )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
