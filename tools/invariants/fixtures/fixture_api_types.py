# invariant-scope: api-types
"""Seeded violation for the api-types rule (analyzer test fixture)."""


def untyped_entry(value, flag=True):
    """Public function with no annotations."""
    return (value, flag)
