# invariant-scope: hot-loop
"""Seeded violations for the hot-loop rule (analyzer test fixture)."""


# invariant: hot-loop
def count_labeled_edges(graph, vertices):
    total = 0
    for vertex in vertices:
        for _target in graph.successors(vertex):
            total += len(f"visiting {vertex}")
    return total
