# invariant-scope: lock-discipline
"""Seeded violation for the lock-discipline rule (analyzer test fixture)."""

import threading


class LeakyCache:
    """Reads its guarded dict without taking the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def get(self, key):
        return self._entries.get(key)  # unlocked read of guarded state
