# invariant-scope: fault-gate
"""Seeded violations for the fault-gate rule (test fixture)."""

from repro.service import faults
from repro.service.faults import FaultPlan, install  # forbidden imports

_ACTIVE = None


def ok_guarded_hook():
    if _ACTIVE is None:
        return None
    return _ACTIVE


def ok_propagation():
    # Propagation helpers are the sanctioned production surface.
    spec = faults.active_spec()
    faults.install_spec(spec)
    faults.install_from_env()
    return faults.worker_fault()


def bad_unguarded_hook():
    # Does work before (and without) the inert guard.
    value = len(str(_ACTIVE))
    return value


def bad_install_call():
    faults.install(FaultPlan(worker_crash_at=(1,)))  # installs a plan


def bad_uninstall_call():
    faults.uninstall()  # tears down test state from production code


def bad_direct_poke():
    faults._ACTIVE = install  # bypasses install() entirely
