# invariant-scope: solver-purity
"""Seeded violations for the solver-purity rule (analyzer test fixture)."""

_RESULT_MEMO = {}


class LeakySolver:
    """Stores per-query state on the instance and takes no context."""

    def __init__(self, language):
        self.language = language

    def solve(self, graph, source, target):
        self.last_result = (graph, source, target)
        return None
