# invariant-scope: snapshot-readonly
"""Seeded violations for the snapshot-readonly rule (test fixture)."""


class FakeAttached:
    def __init__(self, raw, mapping):
        self._raw = raw
        self._mapping = mapping
        self._label_indptr = {}

    def ok_rebind(self, raw):
        # Rebinding the attribute is allowed: it does not touch the
        # mapped pages, only the Python object graph.
        self._raw = dict(raw)
        local = self._raw["out_targets"]
        return local[0]

    def bad_item_store(self):
        self._raw["out_targets"][0] = 7  # store through mapped array

    def bad_aug_store(self):
        self._label_indptr["a"][1] += 1  # in-place add on mapped array

    def bad_delete(self):
        del self._raw["out_labels"][2]  # del through mapped array

    def bad_mutator(self):
        self._raw["out_indptr"].byteswap()  # in-place mutator

    def bad_close(self):
        self._mapping.close()  # explicit teardown of a held mapping
