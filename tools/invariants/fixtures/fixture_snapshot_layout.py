# invariant-scope: snapshot-layout
"""Seeded layout module for the snapshot-layout rule (test fixture)."""

import struct

MAGIC = b"FXTR"
FORMAT_VERSION = 1
SUPPORTED_VERSIONS = (1,)
_ARRAY_NAMES_V1 = ("alpha", "beta")
_REVERSE_ARRAY_NAMES = ("gamma",)
_REACH_ARRAY_NAMES = ("delta",)
_U32 = struct.Struct("<I")
