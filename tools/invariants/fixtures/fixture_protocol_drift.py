# invariant-scope: protocol-drift
"""Seeded violation for the protocol-drift rule (analyzer test fixture)."""

RESULT_FIELDS = ("language", "source", "target")


def result_record(result):
    return {
        "language": str(result.language),
        "target": result.target,
        "source": result.source,
    }
